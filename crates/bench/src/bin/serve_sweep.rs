//! Online serving sweep: arrival rate × admission policy → request-level
//! SLO metrics (TTFT / TPOT / p99 / goodput), for Mixtral-8×7B in Env 1
//! served by the full Klotski engine.
//!
//! This is the serving-side complement of Fig. 10/11: the engines there
//! are handed perfectly formed batch groups; here the groups are formed
//! *online* from a Poisson request stream, so admission policy — not the
//! pipeline — is what differentiates the cells. Output is deterministic
//! under the fixed seed (the examples smoke test asserts byte-identical
//! reruns) and ends with one JSON line per cell for machine consumption.
//!
//! `KLOTSKI_CHEAP=1` shrinks the sweep to CI-smoke scale.

use klotski_bench::{cheap_mode, TextTable, SEED};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_serve::admission::AdmissionPolicy;
use klotski_serve::metrics::{summarize, SloSpec, SloSummary};
use klotski_serve::server::{serve, ServeConfig, Traffic};
use klotski_serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski_sim::time::SimDuration;

struct Cell {
    rate: f64,
    policy: AdmissionPolicy,
    summary: SloSummary,
}

fn json_line(c: &Cell) -> String {
    let s = &c.summary;
    format!(
        "{{\"rate_rps\":{:.2},\"policy\":\"{}\",\"requests\":{},\"slo_met\":{},\
         \"ttft_p50_s\":{:.3},\"ttft_p99_s\":{:.3},\"tpot_p50_s\":{:.3},\
         \"e2e_p99_s\":{:.3},\"goodput_tps\":{:.3},\"throughput_tps\":{:.3}}}",
        c.rate,
        c.policy.label(),
        s.requests,
        s.slo_met,
        s.ttft.p50.as_secs_f64(),
        s.ttft.p99.as_secs_f64(),
        s.tpot.p50.as_secs_f64(),
        s.e2e.p99.as_secs_f64(),
        s.goodput_tps,
        s.throughput_tps,
    )
}

fn main() {
    let cheap = cheap_mode();
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let engine = KlotskiEngine::new(KlotskiConfig::full());

    // Workload shape: paper-like prompts with short-ish outputs; shrunk
    // further for the CI smoke run.
    let (num_requests, prompt, gen) = if cheap {
        (24u32, LengthDist::Fixed(64), LengthDist::Fixed(4))
    } else {
        (
            96,
            LengthDist::Uniform { lo: 256, hi: 512 },
            LengthDist::Uniform { lo: 8, hi: 32 },
        )
    };
    let batch_size = if cheap { 4 } else { 8 };
    let n_max = if cheap { 4 } else { 8 };
    // The engine sustains roughly 0.3 req/s (cheap shape: ~0.5 req/s) at
    // maximal batching, so the sweep straddles capacity: an underloaded
    // cell (admission latency dominates), a near-capacity cell, and an
    // oversaturated cell (backlog drain dominates).
    let rates: Vec<f64> = if cheap {
        vec![0.1, 2.0]
    } else {
        vec![0.02, 0.08, 0.32]
    };
    // End-to-end budget for the cost-aware policy and the goodput SLO,
    // scaled to offloaded-MoE speeds: prefill is tens of seconds and one
    // decode step of a full group is single-digit seconds.
    let slo_e2e = SimDuration::from_secs(if cheap { 60 } else { 240 });
    let slo = SloSpec {
        ttft: slo_e2e / 2,
        tpot: SimDuration::from_secs(8),
    };
    let policies = [
        AdmissionPolicy::FixedN { n: n_max },
        AdmissionPolicy::Deadline {
            n: n_max,
            deadline: slo_e2e / 4,
        },
        AdmissionPolicy::CostAware {
            max_n: n_max,
            slo_e2e,
        },
    ];

    println!(
        "== serve_sweep: Mixtral-8x7B Env 1, Klotski engine, bs {batch_size}, n <= {n_max}, \
         {num_requests} Poisson requests per cell =="
    );
    println!(
        "(SLO: TTFT <= {}, TPOT <= {}; goodput counts only SLO-met requests)",
        slo.ttft, slo.tpot
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &rate in &rates {
        let stream = generate(
            Arrivals::Poisson { rate },
            &TrafficConfig {
                num_requests,
                prompt,
                gen,
                seed: SEED,
            },
        );
        println!("\n-- arrival rate {rate:.2} req/s --");
        let mut table = TextTable::new([
            "policy", "groups", "TTFT p50", "TTFT p99", "TPOT p50", "e2e p99", "SLO met",
            "goodput", "tok/s",
        ]);
        for &policy in &policies {
            let report = serve(
                &engine,
                &spec,
                &hw,
                &Traffic::Open(stream.clone()),
                &ServeConfig {
                    batch_size,
                    policy,
                    seed: SEED,
                },
            )
            .expect("serve run");
            let summary = summarize(&report, &slo);
            table.row([
                policy.label().to_owned(),
                report.groups.len().to_string(),
                format!("{:.2}s", summary.ttft.p50.as_secs_f64()),
                format!("{:.2}s", summary.ttft.p99.as_secs_f64()),
                format!("{:.2}s", summary.tpot.p50.as_secs_f64()),
                format!("{:.2}s", summary.e2e.p99.as_secs_f64()),
                format!("{}/{}", summary.slo_met, summary.requests),
                format!("{:.2}", summary.goodput_tps),
                format!("{:.2}", summary.throughput_tps),
            ]);
            cells.push(Cell {
                rate,
                policy,
                summary,
            });
        }
        table.print();
    }

    // The point of the cost-aware policy: somewhere in the sweep it must
    // beat rigid fixed-n goodput (typically at low load, where fixed-n
    // sits on requests waiting for a full group).
    let beats = rates.iter().any(|&r| {
        let goodput = |label: &str| {
            cells
                .iter()
                .find(|c| c.rate == r && c.policy.label() == label)
                .map(|c| c.summary.goodput_tps)
                .unwrap_or(0.0)
        };
        goodput("cost_aware") > goodput("fixed_n")
    });
    assert!(
        beats,
        "cost-aware admission should beat fixed-n goodput on at least one cell"
    );
    println!("\ncost-aware beats fixed-n goodput on >=1 swept cell: confirmed");

    println!("\n-- JSON --");
    for c in &cells {
        println!("{}", json_line(c));
    }
}
