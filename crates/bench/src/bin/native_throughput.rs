//! Native-path throughput: tokens/sec of the really-executed pipeline,
//! prefill and decode, across batch sizes — the first entry in the repo's
//! perf trajectory (committed as `BENCH_native.json`).
//!
//! Every cell runs the same workload twice through [`run_pipeline`]:
//!
//! * **per-token** — `batch_experts: false`, the retained pre-batching
//!   fallback that computes each routed token as its own matvec chain;
//! * **batched** — expert-level batched GEMMs, serial (`1` worker) and
//!   parallel (the default worker pool).
//!
//! The bin asserts the modes produce byte-identical tokens and final
//! hidden states (the batching is numerics-neutral), and in full mode
//! asserts the ≥2× decode speedup the batched path exists for. Output
//! ends with one JSON line per cell; everything in it is deterministic
//! except the wall-clock-derived `*_tps` / `speedup_*` fields, which are
//! excluded from any determinism assertion.
//!
//! `KLOTSKI_CHEAP=1` shrinks the model and sweep to CI-smoke scale (and
//! only smoke-checks the speedup, since shared CI runners make tight
//! ratio asserts flaky).

use std::time::Duration;

use klotski_bench::{cheap_mode, TextTable};
use klotski_core::native::{run_pipeline, NativePipelineConfig, NativeRunResult};
use klotski_moe::config::MoeConfig;
use klotski_moe::model::MoeModel;

/// The benchmark model. Bigger than the test presets on purpose: each
/// expert is ~3 MB (full) / ~0.75 MB (cheap), so the per-token path
/// actually re-streams weights out of cache and the batched path's
/// amortization is measured, not simulated.
fn bench_model(cheap: bool) -> MoeConfig {
    if cheap {
        MoeConfig {
            n_layers: 2,
            d_model: 128,
            d_ff: 512,
            n_heads: 4,
            head_dim: 32,
            n_experts: 6,
            top_k: 2,
            vocab: 256,
            seed: 77,
        }
    } else {
        MoeConfig {
            n_layers: 4,
            d_model: 256,
            d_ff: 1024,
            n_heads: 8,
            head_dim: 32,
            n_experts: 8,
            top_k: 2,
            vocab: 512,
            seed: 77,
        }
    }
}

fn prompts(n_seqs: usize, len: usize, vocab: usize) -> Vec<Vec<u32>> {
    (0..n_seqs)
        .map(|s| {
            (0..len)
                .map(|p| ((s * 131 + p * 17 + 7) % vocab) as u32)
                .collect()
        })
        .collect()
}

struct Cell {
    phase: &'static str,
    n_seqs: usize,
    /// Total forward-pass tokens the run processes (prompt + generated).
    tokens: usize,
    per_token: Duration,
    batched_serial: Duration,
    batched_parallel: Duration,
}

impl Cell {
    fn tps(&self, d: Duration) -> f64 {
        self.tokens as f64 / d.as_secs_f64().max(1e-9)
    }

    fn speedup_serial(&self) -> f64 {
        self.per_token.as_secs_f64() / self.batched_serial.as_secs_f64().max(1e-9)
    }

    fn speedup_parallel(&self) -> f64 {
        self.per_token.as_secs_f64() / self.batched_parallel.as_secs_f64().max(1e-9)
    }
}

/// Best-of-2 runs (wall-clock noise) of one pipeline config; asserts the
/// result matches `reference` bit-for-bit before timing counts.
fn timed(
    model: &MoeModel,
    p: &[Vec<u32>],
    gen_len: usize,
    cfg: &NativePipelineConfig,
    reference: &NativeRunResult,
    label: &str,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let r = run_pipeline(model, p, gen_len, cfg);
        assert_eq!(r.tokens, reference.tokens, "{label}: tokens diverged");
        assert_eq!(
            r.final_hidden, reference.final_hidden,
            "{label}: hidden states diverged"
        );
        best = best.min(r.elapsed);
    }
    best
}

fn json_line(mode: &str, c: &Cell) -> String {
    format!(
        "{{\"bench\":\"native_throughput\",\"mode\":\"{}\",\"phase\":\"{}\",\"seqs\":{},\
         \"tokens\":{},\"per_token_tps\":{:.1},\"batched_serial_tps\":{:.1},\
         \"batched_parallel_tps\":{:.1},\"speedup_serial\":{:.2},\"speedup_parallel\":{:.2}}}",
        mode,
        c.phase,
        c.n_seqs,
        c.tokens,
        c.tps(c.per_token),
        c.tps(c.batched_serial),
        c.tps(c.batched_parallel),
        c.speedup_serial(),
        c.speedup_parallel(),
    )
}

fn main() {
    let cheap = cheap_mode();
    let mcfg = bench_model(cheap);
    let model = MoeModel::new(mcfg);
    let batch_sizes: Vec<usize> = if cheap {
        vec![2, 8]
    } else {
        vec![1, 8, 16, 32]
    };
    // Prefill cells are prompt-dominated, decode cells generation-dominated.
    let (prefill_prompt, decode_prompt, decode_gen) = if cheap { (16, 2, 6) } else { (48, 4, 12) };

    println!(
        "== native_throughput: {} layers x {} experts (top-{}), d_model {}, d_ff {} ({}) ==",
        mcfg.n_layers,
        mcfg.n_experts,
        mcfg.top_k,
        mcfg.d_model,
        mcfg.d_ff,
        if cheap { "cheap" } else { "full" },
    );
    println!("per-token = retained matvec fallback; batched = expert-level GEMMs");

    let per_token_cfg = NativePipelineConfig {
        batch_experts: false,
        ..Default::default()
    };
    let serial_cfg = NativePipelineConfig {
        compute_workers: 1,
        ..Default::default()
    };
    let parallel_cfg = NativePipelineConfig::default();

    let mut cells: Vec<Cell> = Vec::new();
    for &n_seqs in &batch_sizes {
        for (phase, prompt_len, gen_len) in [
            ("prefill", prefill_prompt, 1usize),
            ("decode", decode_prompt, decode_gen),
        ] {
            let p = prompts(n_seqs, prompt_len, mcfg.vocab);
            let reference = run_pipeline(&model, &p, gen_len, &per_token_cfg);
            let per_token = timed(&model, &p, gen_len, &per_token_cfg, &reference, "per-token");
            let batched_serial = timed(
                &model,
                &p,
                gen_len,
                &serial_cfg,
                &reference,
                "batched serial",
            );
            let batched_parallel = timed(
                &model,
                &p,
                gen_len,
                &parallel_cfg,
                &reference,
                "batched parallel",
            );
            cells.push(Cell {
                phase,
                n_seqs,
                tokens: n_seqs * (prompt_len + gen_len),
                per_token,
                batched_serial,
                batched_parallel,
            });
        }
    }

    let mut table = TextTable::new([
        "phase",
        "seqs",
        "tokens",
        "per-token tok/s",
        "batched tok/s",
        "batched(par) tok/s",
        "speedup",
    ]);
    for c in &cells {
        table.row([
            c.phase.to_owned(),
            c.n_seqs.to_string(),
            c.tokens.to_string(),
            format!("{:.0}", c.tps(c.per_token)),
            format!("{:.0}", c.tps(c.batched_serial)),
            format!("{:.0}", c.tps(c.batched_parallel)),
            format!("{:.2}x", c.speedup_parallel()),
        ]);
    }
    table.print();

    println!("\nall modes byte-identical (tokens + final hidden): confirmed");

    // The acceptance bar: on a >= 8-sequence batch, decode must run >= 2x
    // faster batched than per-token. Cheap/CI mode only smoke-checks
    // execution (shared-runner wall clocks are too noisy to gate on).
    let gate = cells
        .iter()
        .filter(|c| c.phase == "decode" && c.n_seqs >= 8)
        .map(|c| c.speedup_parallel())
        .fold(0.0f64, f64::max);
    if cheap {
        println!("decode speedup at >=8 seqs: {gate:.2}x (cheap mode: not gated)");
    } else {
        println!("decode speedup at >=8 seqs: {gate:.2}x (gate: >=2.00x)");
        assert!(
            gate >= 2.0,
            "batched expert path must be >=2x over per-token decode, got {gate:.2}x"
        );
    }

    println!("\n-- JSON --");
    let mode = if cheap { "cheap" } else { "full" };
    for c in &cells {
        println!("{}", json_line(mode, c));
    }
}
