//! Native-path throughput: tokens/sec of the really-executed pipeline,
//! prefill and decode, across batch sizes — the repo's perf trajectory
//! (committed as `BENCH_native.json`, extended per PR, never overwritten
//! blindly).
//!
//! Two sweeps, two axes:
//!
//! **Expert-path sweep** (the PR 3 cells, same model and workloads so the
//! trajectory stays comparable): every cell runs the same workload through
//! [`run_pipeline`] in four modes —
//!
//! * **per-token** — `batch_experts: false`, the retained pre-batching
//!   fallback that computes each routed token as its own matvec chain;
//! * **batched serial / parallel** — expert-level batched GEMMs with 1
//!   worker / the default worker pool, attention still per-token;
//! * **attn-batched** — batched experts *plus* group-batched attention
//!   (`batch_attention: true`): Q/K/V/O as per-group GEMMs and blocked
//!   strided scores/AV kernels in reused scratch.
//!
//! **Attention sweep** (`"model":"attn_heavy"` cells): decode-heavy cells
//! on an attention-dominated shape (wide d_model, modest d_ff, longer
//! contexts — the regime of real large models, where attention is a
//! material share of step time), comparing per-token vs batched attention
//! with the expert path fixed at its best. Full mode gates the ≥1.3×
//! decode win at 32 sequences.
//!
//! **Kernel-backend sweep** (`"model":"kernel_backend"` cells): decode
//! cells with the tensor micro-kernels forced to the scalar reference vs
//! the detected SIMD backend (`--features simd`; AVX2 or SSE2), everything
//! else fixed at the default pipeline. Full mode gates the ≥1.5× decode
//! win at 32 sequences when the AVX2 backend is available.
//!
//! **Quantized-GEMM sweep** (`"model":"quant_gemm"` cells): decode cells
//! with a 4-bit quantized expert store, comparing the staged path
//! (I/O-thread dequantize into a full-precision slot, then dense GEMMs)
//! against the fused path (packed bytes in the slot, dequantization fused
//! into the GEMM panel loop). Full mode gates fused > staged at the
//! largest batch.
//!
//! The bin asserts all modes produce byte-identical tokens and final
//! hidden states (both batching axes are numerics-neutral). Output ends
//! with one JSON line per cell; everything in it is deterministic except
//! the wall-clock-derived `*_tps` / `speedup_*` fields, which are excluded
//! from any determinism assertion.
//!
//! `KLOTSKI_CHEAP=1` shrinks the model and sweeps to CI-smoke scale while
//! still executing **both** attention modes with byte-identity asserted —
//! the bit-exactness gate runs on every PR — and only smoke-checks the
//! speedups (shared CI runners make tight ratio asserts flaky).

use std::time::Duration;

use klotski_bench::{cheap_mode, TextTable};
use klotski_core::native::{run_pipeline, NativePipelineConfig, NativeRunResult};
use klotski_moe::config::MoeConfig;
use klotski_moe::model::MoeModel;
use klotski_tensor::quant::QuantConfig;
use klotski_tensor::simd::{cpu_features, detected_backend, KernelBackend};

/// The expert-sweep benchmark model (identical to the PR 3 entries so the
/// trajectory stays comparable). Bigger than the test presets on purpose:
/// each expert is ~3 MB (full) / ~0.75 MB (cheap), so the per-token path
/// actually re-streams weights out of cache and the batched path's
/// amortization is measured, not simulated.
fn bench_model(cheap: bool) -> MoeConfig {
    if cheap {
        MoeConfig {
            n_layers: 2,
            d_model: 128,
            d_ff: 512,
            n_heads: 4,
            head_dim: 32,
            n_experts: 6,
            top_k: 2,
            vocab: 256,
            seed: 77,
        }
    } else {
        MoeConfig {
            n_layers: 4,
            d_model: 256,
            d_ff: 1024,
            n_heads: 8,
            head_dim: 32,
            n_experts: 8,
            top_k: 2,
            vocab: 512,
            seed: 77,
        }
    }
}

/// The attention-sweep model: wide attention (d_model 512, 16 heads)
/// against modest experts, the regime where the attention block is a
/// material share of decode step time (as it is in real large models).
fn attn_heavy_model(cheap: bool) -> MoeConfig {
    if cheap {
        MoeConfig {
            n_layers: 2,
            d_model: 256,
            d_ff: 128,
            n_heads: 8,
            head_dim: 32,
            n_experts: 6,
            top_k: 2,
            vocab: 256,
            seed: 78,
        }
    } else {
        MoeConfig {
            n_layers: 2,
            d_model: 512,
            d_ff: 512,
            n_heads: 16,
            head_dim: 32,
            n_experts: 8,
            top_k: 2,
            vocab: 512,
            seed: 78,
        }
    }
}

fn prompts(n_seqs: usize, len: usize, vocab: usize) -> Vec<Vec<u32>> {
    (0..n_seqs)
        .map(|s| {
            (0..len)
                .map(|p| ((s * 131 + p * 17 + 7) % vocab) as u32)
                .collect()
        })
        .collect()
}

fn tps(tokens: usize, d: Duration) -> f64 {
    tokens as f64 / d.as_secs_f64().max(1e-9)
}

fn ratio(slow: Duration, fast: Duration) -> f64 {
    slow.as_secs_f64() / fast.as_secs_f64().max(1e-9)
}

struct Cell {
    phase: &'static str,
    n_seqs: usize,
    /// Total forward-pass tokens the run processes (prompt + generated).
    tokens: usize,
    per_token: Duration,
    batched_serial: Duration,
    batched_parallel: Duration,
    attn_batched: Duration,
}

/// One attention-sweep cell: per-token vs batched attention, expert path
/// fixed at batched + default workers.
struct AttnCell {
    n_seqs: usize,
    tokens: usize,
    attn_off: Duration,
    attn_on: Duration,
}

/// One kernel-backend cell: scalar-forced vs detected-SIMD micro-kernels,
/// pipeline otherwise at its default best.
struct KernelCell {
    n_seqs: usize,
    tokens: usize,
    scalar: Duration,
    simd: Duration,
}

/// One quantized-GEMM cell: staged (dequantize-then-GEMM) vs fused
/// (GEMM straight off the packed codes) on a 4-bit expert store.
struct QuantCell {
    n_seqs: usize,
    tokens: usize,
    staged: Duration,
    fused: Duration,
}

/// The environment fields recorded in every JSON entry: what the CPU
/// offers and which micro-kernel backend the run actually used.
fn env_json() -> String {
    format!(
        "\"kernel_backend\":\"{}\",\"cpu_features\":\"{}\"",
        detected_backend().name(),
        cpu_features()
    )
}

/// Best-of-2 runs (wall-clock noise) of one pipeline config; asserts the
/// result matches `reference` bit-for-bit before timing counts.
fn timed(
    model: &MoeModel,
    p: &[Vec<u32>],
    gen_len: usize,
    cfg: &NativePipelineConfig,
    reference: &NativeRunResult,
    label: &str,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..2 {
        let r = run_pipeline(model, p, gen_len, cfg);
        assert_eq!(r.tokens, reference.tokens, "{label}: tokens diverged");
        assert_eq!(
            r.final_hidden, reference.final_hidden,
            "{label}: hidden states diverged"
        );
        best = best.min(r.elapsed);
    }
    best
}

fn json_line(mode: &str, c: &Cell) -> String {
    format!(
        "{{\"bench\":\"native_throughput\",\"mode\":\"{}\",\"phase\":\"{}\",\"seqs\":{},\
         \"tokens\":{},\"per_token_tps\":{:.1},\"batched_serial_tps\":{:.1},\
         \"batched_parallel_tps\":{:.1},\"attn_batched_tps\":{:.1},\"speedup_serial\":{:.2},\
         \"speedup_parallel\":{:.2},\"speedup_attn\":{:.2},{}}}",
        mode,
        c.phase,
        c.n_seqs,
        c.tokens,
        tps(c.tokens, c.per_token),
        tps(c.tokens, c.batched_serial),
        tps(c.tokens, c.batched_parallel),
        tps(c.tokens, c.attn_batched),
        ratio(c.per_token, c.batched_serial),
        ratio(c.per_token, c.batched_parallel),
        ratio(c.batched_parallel, c.attn_batched),
        env_json(),
    )
}

fn attn_json_line(mode: &str, c: &AttnCell) -> String {
    format!(
        "{{\"bench\":\"native_throughput\",\"mode\":\"{}\",\"model\":\"attn_heavy\",\
         \"phase\":\"decode\",\"seqs\":{},\"tokens\":{},\"attn_off_tps\":{:.1},\
         \"attn_on_tps\":{:.1},\"speedup_attn\":{:.2},{}}}",
        mode,
        c.n_seqs,
        c.tokens,
        tps(c.tokens, c.attn_off),
        tps(c.tokens, c.attn_on),
        ratio(c.attn_off, c.attn_on),
        env_json(),
    )
}

fn kernel_json_line(mode: &str, c: &KernelCell) -> String {
    format!(
        "{{\"bench\":\"native_throughput\",\"mode\":\"{}\",\"model\":\"kernel_backend\",\
         \"phase\":\"decode\",\"seqs\":{},\"tokens\":{},\"scalar_tps\":{:.1},\
         \"simd_tps\":{:.1},\"speedup_simd\":{:.2},{}}}",
        mode,
        c.n_seqs,
        c.tokens,
        tps(c.tokens, c.scalar),
        tps(c.tokens, c.simd),
        ratio(c.scalar, c.simd),
        env_json(),
    )
}

fn quant_json_line(mode: &str, c: &QuantCell) -> String {
    format!(
        "{{\"bench\":\"native_throughput\",\"mode\":\"{}\",\"model\":\"quant_gemm\",\
         \"phase\":\"decode\",\"seqs\":{},\"tokens\":{},\"staged_tps\":{:.1},\
         \"fused_tps\":{:.1},\"speedup_fused\":{:.2},{}}}",
        mode,
        c.n_seqs,
        c.tokens,
        tps(c.tokens, c.staged),
        tps(c.tokens, c.fused),
        ratio(c.staged, c.fused),
        env_json(),
    )
}

fn expert_sweep(cheap: bool) -> Vec<Cell> {
    let mcfg = bench_model(cheap);
    let model = MoeModel::new(mcfg);
    let batch_sizes: Vec<usize> = if cheap {
        vec![2, 8]
    } else {
        vec![1, 8, 16, 32]
    };
    // Prefill cells are prompt-dominated, decode cells generation-dominated.
    let (prefill_prompt, decode_prompt, decode_gen) = if cheap { (16, 2, 6) } else { (48, 4, 12) };

    println!(
        "== native_throughput: {} layers x {} experts (top-{}), d_model {}, d_ff {} ({}) ==",
        mcfg.n_layers,
        mcfg.n_experts,
        mcfg.top_k,
        mcfg.d_model,
        mcfg.d_ff,
        if cheap { "cheap" } else { "full" },
    );
    println!(
        "per-token = retained matvec fallback; batched = expert-level GEMMs; \
         attn-batched = + group-batched attention"
    );

    let per_token_cfg = NativePipelineConfig {
        batch_experts: false,
        batch_attention: false,
        ..Default::default()
    };
    let serial_cfg = NativePipelineConfig {
        compute_workers: 1,
        batch_attention: false,
        ..Default::default()
    };
    let parallel_cfg = NativePipelineConfig {
        batch_attention: false,
        ..Default::default()
    };
    let attn_cfg = NativePipelineConfig::default();

    let mut cells: Vec<Cell> = Vec::new();
    for &n_seqs in &batch_sizes {
        for (phase, prompt_len, gen_len) in [
            ("prefill", prefill_prompt, 1usize),
            ("decode", decode_prompt, decode_gen),
        ] {
            let p = prompts(n_seqs, prompt_len, mcfg.vocab);
            let reference = run_pipeline(&model, &p, gen_len, &per_token_cfg);
            let per_token = timed(&model, &p, gen_len, &per_token_cfg, &reference, "per-token");
            let batched_serial = timed(
                &model,
                &p,
                gen_len,
                &serial_cfg,
                &reference,
                "batched serial",
            );
            let batched_parallel = timed(
                &model,
                &p,
                gen_len,
                &parallel_cfg,
                &reference,
                "batched parallel",
            );
            let attn_batched = timed(&model, &p, gen_len, &attn_cfg, &reference, "attn batched");
            cells.push(Cell {
                phase,
                n_seqs,
                tokens: n_seqs * (prompt_len + gen_len),
                per_token,
                batched_serial,
                batched_parallel,
                attn_batched,
            });
        }
    }

    let mut table = TextTable::new([
        "phase",
        "seqs",
        "tokens",
        "per-token tok/s",
        "batched tok/s",
        "batched(par) tok/s",
        "attn-batched tok/s",
        "speedup",
    ]);
    for c in &cells {
        table.row([
            c.phase.to_owned(),
            c.n_seqs.to_string(),
            c.tokens.to_string(),
            format!("{:.0}", tps(c.tokens, c.per_token)),
            format!("{:.0}", tps(c.tokens, c.batched_serial)),
            format!("{:.0}", tps(c.tokens, c.batched_parallel)),
            format!("{:.0}", tps(c.tokens, c.attn_batched)),
            format!("{:.2}x", ratio(c.per_token, c.attn_batched)),
        ]);
    }
    table.print();
    cells
}

fn attn_sweep(cheap: bool) -> Vec<AttnCell> {
    let mcfg = attn_heavy_model(cheap);
    let model = MoeModel::new(mcfg);
    let batch_sizes: Vec<usize> = if cheap { vec![2, 8] } else { vec![8, 32] };
    let (prompt_len, gen_len) = if cheap { (8, 8) } else { (24, 24) };

    println!(
        "\n== attention sweep: {} layers x {} experts (top-{}), d_model {} ({} heads), d_ff {} ==",
        mcfg.n_layers, mcfg.n_experts, mcfg.top_k, mcfg.d_model, mcfg.n_heads, mcfg.d_ff,
    );
    println!("decode, prompt {prompt_len} + gen {gen_len}; expert path fixed at batched");

    let off_cfg = NativePipelineConfig {
        batch_attention: false,
        ..Default::default()
    };
    let on_cfg = NativePipelineConfig::default();

    let mut cells = Vec::new();
    for &n_seqs in &batch_sizes {
        let p = prompts(n_seqs, prompt_len, mcfg.vocab);
        let reference = run_pipeline(&model, &p, gen_len, &off_cfg);
        let attn_off = timed(&model, &p, gen_len, &off_cfg, &reference, "attn per-token");
        let attn_on = timed(&model, &p, gen_len, &on_cfg, &reference, "attn batched");
        cells.push(AttnCell {
            n_seqs,
            tokens: n_seqs * (prompt_len + gen_len),
            attn_off,
            attn_on,
        });
    }

    let mut table = TextTable::new([
        "seqs",
        "tokens",
        "attn per-token tok/s",
        "attn batched tok/s",
        "speedup",
    ]);
    for c in &cells {
        table.row([
            c.n_seqs.to_string(),
            c.tokens.to_string(),
            format!("{:.0}", tps(c.tokens, c.attn_off)),
            format!("{:.0}", tps(c.tokens, c.attn_on)),
            format!("{:.2}x", ratio(c.attn_off, c.attn_on)),
        ]);
    }
    table.print();
    cells
}

fn kernel_sweep(cheap: bool) -> Vec<KernelCell> {
    let mcfg = bench_model(cheap);
    let model = MoeModel::new(mcfg);
    let batch_sizes: Vec<usize> = if cheap { vec![2] } else { vec![8, 32] };
    let (prompt_len, gen_len) = if cheap { (2, 6) } else { (4, 12) };

    println!(
        "\n== kernel-backend sweep: scalar vs {} micro-kernels (decode, cpu: {}) ==",
        detected_backend(),
        cpu_features(),
    );
    println!("same pipeline config both sides; only the tensor micro-kernels switch");

    let scalar_cfg = NativePipelineConfig {
        kernel_backend: Some(KernelBackend::Scalar),
        ..Default::default()
    };
    let simd_cfg = NativePipelineConfig {
        kernel_backend: Some(detected_backend()),
        ..Default::default()
    };

    let mut cells = Vec::new();
    for &n_seqs in &batch_sizes {
        let p = prompts(n_seqs, prompt_len, mcfg.vocab);
        let reference = run_pipeline(&model, &p, gen_len, &scalar_cfg);
        let scalar = timed(
            &model,
            &p,
            gen_len,
            &scalar_cfg,
            &reference,
            "scalar kernels",
        );
        let simd = timed(&model, &p, gen_len, &simd_cfg, &reference, "simd kernels");
        cells.push(KernelCell {
            n_seqs,
            tokens: n_seqs * (prompt_len + gen_len),
            scalar,
            simd,
        });
    }

    let mut table = TextTable::new(["seqs", "tokens", "scalar tok/s", "simd tok/s", "speedup"]);
    for c in &cells {
        table.row([
            c.n_seqs.to_string(),
            c.tokens.to_string(),
            format!("{:.0}", tps(c.tokens, c.scalar)),
            format!("{:.0}", tps(c.tokens, c.simd)),
            format!("{:.2}x", ratio(c.scalar, c.simd)),
        ]);
    }
    table.print();
    cells
}

fn quant_sweep(cheap: bool) -> Vec<QuantCell> {
    let mcfg = bench_model(cheap);
    let model = MoeModel::new(mcfg);
    let batch_sizes: Vec<usize> = if cheap { vec![2] } else { vec![8, 32] };
    let (prompt_len, gen_len) = if cheap { (2, 6) } else { (4, 12) };
    let qcfg = QuantConfig::paper_default();

    println!(
        "\n== quantized-GEMM sweep: staged dequant-then-GEMM vs fused ({}-bit experts) ==",
        qcfg.bits,
    );
    println!("staged = I/O thread dequantizes into a dense slot; fused = GEMM off packed codes");

    let staged_cfg = NativePipelineConfig {
        quant: Some(qcfg),
        fused_quant: false,
        ..Default::default()
    };
    let fused_cfg = NativePipelineConfig {
        quant: Some(qcfg),
        fused_quant: true,
        ..Default::default()
    };

    let mut cells = Vec::new();
    for &n_seqs in &batch_sizes {
        let p = prompts(n_seqs, prompt_len, mcfg.vocab);
        let reference = run_pipeline(&model, &p, gen_len, &staged_cfg);
        let staged = timed(&model, &p, gen_len, &staged_cfg, &reference, "staged quant");
        let fused = timed(&model, &p, gen_len, &fused_cfg, &reference, "fused quant");
        cells.push(QuantCell {
            n_seqs,
            tokens: n_seqs * (prompt_len + gen_len),
            staged,
            fused,
        });
    }

    let mut table = TextTable::new(["seqs", "tokens", "staged tok/s", "fused tok/s", "speedup"]);
    for c in &cells {
        table.row([
            c.n_seqs.to_string(),
            c.tokens.to_string(),
            format!("{:.0}", tps(c.tokens, c.staged)),
            format!("{:.0}", tps(c.tokens, c.fused)),
            format!("{:.2}x", ratio(c.staged, c.fused)),
        ]);
    }
    table.print();
    cells
}

fn main() {
    let cheap = cheap_mode();
    let cells = expert_sweep(cheap);
    let attn_cells = attn_sweep(cheap);
    let kernel_cells = kernel_sweep(cheap);
    let quant_cells = quant_sweep(cheap);

    println!("\nall modes byte-identical (tokens + final hidden): confirmed");

    // Expert-path bar (unchanged since PR 3): on a >= 8-sequence batch,
    // decode must run >= 2x faster batched than per-token. Cheap/CI mode
    // only smoke-checks execution (shared-runner wall clocks are too
    // noisy to gate on).
    let expert_gate = cells
        .iter()
        .filter(|c| c.phase == "decode" && c.n_seqs >= 8)
        .map(|c| ratio(c.per_token, c.batched_parallel))
        .fold(0.0f64, f64::max);
    // Attention-path bar: at 32 sequences on the attention-heavy shape,
    // batched attention must win >= 1.3x over the per-token walk.
    let attn_gate = attn_cells
        .iter()
        .filter(|c| c.n_seqs >= 32)
        .map(|c| ratio(c.attn_off, c.attn_on))
        .fold(0.0f64, f64::max);
    // Kernel-backend bar: at 32 sequences, the SIMD micro-kernels must
    // decode >= 1.5x faster than the scalar reference — gated only when
    // the AVX2 backend is actually available (the `simd` feature is on
    // and the CPU has AVX2).
    let simd_gate = kernel_cells
        .iter()
        .filter(|c| c.n_seqs >= 32)
        .map(|c| ratio(c.scalar, c.simd))
        .fold(0.0f64, f64::max);
    // Quantized-GEMM bar: at the largest batch, the fused path must beat
    // staged dequantize-then-GEMM.
    let quant_gate = quant_cells
        .iter()
        .map(|c| (c.n_seqs, ratio(c.staged, c.fused)))
        .max_by_key(|&(n, _)| n)
        .map_or(0.0, |(_, r)| r);
    if cheap {
        println!("decode speedup at >=8 seqs: {expert_gate:.2}x (cheap mode: not gated)");
        println!("attention speedup: cheap mode, not gated");
        println!("kernel-backend and quantized-GEMM speedups: cheap mode, not gated");
    } else {
        println!("decode speedup at >=8 seqs: {expert_gate:.2}x (gate: >=2.00x)");
        assert!(
            expert_gate >= 2.0,
            "batched expert path must be >=2x over per-token decode, got {expert_gate:.2}x"
        );
        println!("batched-attention decode speedup at 32 seqs: {attn_gate:.2}x (gate: >=1.30x)");
        assert!(
            attn_gate >= 1.3,
            "batched attention must be >=1.3x over per-token attention decode at 32 seqs, \
             got {attn_gate:.2}x"
        );
        if KernelBackend::Avx2.is_available() {
            println!("SIMD kernel decode speedup at 32 seqs: {simd_gate:.2}x (gate: >=1.50x)");
            assert!(
                simd_gate >= 1.5,
                "AVX2 kernels must be >=1.5x over scalar decode at 32 seqs, got {simd_gate:.2}x"
            );
        } else {
            println!(
                "SIMD kernel decode speedup at 32 seqs: {simd_gate:.2}x \
                 (not gated: AVX2 backend unavailable, detected {})",
                detected_backend()
            );
        }
        println!("fused quantized-GEMM decode speedup at 32 seqs: {quant_gate:.2}x (gate: >1.00x)");
        assert!(
            quant_gate > 1.0,
            "fused quantized GEMM must beat staged dequantize-then-GEMM at the largest batch, \
             got {quant_gate:.2}x"
        );
    }

    println!("\n-- JSON --");
    let mode = if cheap { "cheap" } else { "full" };
    for c in &cells {
        println!("{}", json_line(mode, c));
    }
    for c in &attn_cells {
        println!("{}", attn_json_line(mode, c));
    }
    for c in &kernel_cells {
        println!("{}", kernel_json_line(mode, c));
    }
    for c in &quant_cells {
        println!("{}", quant_json_line(mode, c));
    }
}
