//! Fig. 10: end-to-end throughput of Klotski versus the five baselines,
//! across batch sizes, in the paper's three evaluation settings.
//!
//! Pass `--bs128` to add the paper's §9.2 batch-128 comparison point.

use klotski_bench::{fig10_engines, tps_cell, Setting, TextTable};

fn main() {
    let bs128 = std::env::args().any(|a| a == "--bs128");
    let mut batch_sizes = klotski_bench::sweep_batch_sizes();
    if bs128 {
        batch_sizes.push(128);
    }

    for setting in Setting::ALL {
        println!(
            "\n== Fig. 10: {} (n = {}, prompt 512, gen 32) ==",
            setting.title(),
            setting.n()
        );
        let mut headers = vec!["Batch".to_owned()];
        headers.extend(fig10_engines().iter().map(|e| e.name()));
        let mut table = TextTable::new(headers);
        for &bs in &batch_sizes {
            let sc = setting.scenario(bs);
            let mut row = vec![bs.to_string()];
            for engine in fig10_engines() {
                let report = engine.run(&sc).expect("engine run");
                row.push(tps_cell(&report));
            }
            table.row(row);
        }
        table.print();
    }

    println!("\n(token/s; OOM marks runs whose resident footprint exceeds VRAM, §9.2)");
    println!("paper headline: Klotski up to 85.12x / 15.45x / 2.23x / 19.06x / 9.53x over");
    println!("Accelerate / FastGen / FlexGen / MoE-Infinity / Fiddler respectively.");
}
