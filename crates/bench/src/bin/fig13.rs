//! Fig. 13: accuracy of the correlation-aware expert prefetcher, per layer:
//! how often prefetched "hot" experts participate in computation (green
//! line, ≈100%) and how often they are the layer's actual hot experts
//! (blue line, ≈58.9% average), plus the single-sequence comparison
//! (42.24%) that motivates multi-batch aggregation.

use klotski_bench::{Setting, TextTable, SEED};
use klotski_core::prefetcher::measure_accuracy;
use klotski_model::trace::{GatingModel, TraceConfig};

fn main() {
    let setting = Setting::Small8x7bEnv1;
    let spec = setting.model();
    let cfg = TraceConfig::for_model(&spec, SEED);
    let base = GatingModel::new(&cfg);
    let task = base.drifted(cfg.drift, SEED + 1);
    // The paper's Fig. 13 trace scale: a full batch group of sequences
    // (a small slice of it under KLOTSKI_CHEAP).
    let trace = if klotski_bench::cheap_mode() {
        task.generate_trace(60, 128, 8, SEED + 2)
    } else {
        task.generate_trace(240, 512, 32, SEED + 2)
    };
    let report = measure_accuracy(&base, &trace, spec.top_k, 4096);

    println!("== Fig. 13: prefetch accuracy per layer (Mixtral-8x7B) ==\n");
    let mut table = TextTable::new(["Layer", "Participate in comp.", "Really hot"]);
    for (i, acc) in report.per_layer.iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            format!("{:.1}%", acc.participation * 100.0),
            format!("{:.1}%", acc.really_hot * 100.0),
        ]);
    }
    table.print();

    println!(
        "\naverages: participation {:.2}% (paper: 100%), really-hot {:.2}% (paper: 58.89%)",
        report.avg_participation * 100.0,
        report.avg_really_hot * 100.0
    );
    println!(
        "single-sequence prefetch accuracy: {:.2}% (paper: 42.24%)",
        report.single_seq_accuracy * 100.0
    );
    println!("\nreading: multi-batch aggregation makes prefetched experts participate");
    println!("essentially always, even when they are not the layer's true hot set —");
    println!("so mispredictions waste little I/O (§9.6).");
}
