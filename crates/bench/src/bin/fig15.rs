//! Fig. 15: the actual pipelines, drawn. Compares the simple-overlap
//! single-batch pipeline against Klotski on one MoE block's worth of
//! steady-state decode, and reports the per-block completion times the
//! paper quotes (≈2367 ms vs ≈215 ms for batch 64, n = 10).

use klotski_bench::{Setting, SEED};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, Scenario};
use klotski_sim::time::SimTime;

fn run(cfg: KlotskiConfig, sc: &Scenario) -> InferenceReport {
    let mut cfg = cfg;
    cfg.record_timeline = true;
    KlotskiEngine::new(cfg).run(sc).expect("engine run")
}

/// Average time for the whole workload (all batches) to pass one MoE
/// block: total time over (steps × layers). Both engines process the same
/// workload, so the ratio is the bubble-compression factor.
fn block_ms(report: &InferenceReport, sc: &Scenario) -> f64 {
    let visits = sc.workload.gen_len as f64 * sc.spec.n_layers as f64;
    report.total_time.as_millis_f64() / visits
}

fn show(label: &str, report: &InferenceReport, sc: &Scenario, per_block_batches: u32) {
    println!("\n== {label} ==");
    println!(
        "total {} | bubbles {:.0}% | one MoE block (all {} batches) ≈ {:.0} ms",
        report.total_time,
        report.bubble_fraction() * 100.0,
        per_block_batches,
        block_ms(report, sc),
    );
    let metrics = report.metrics.as_ref().expect("timeline recorded");
    // Window near the end of the run (the final decode steps), sized to
    // about four MoE blocks so per-block bubbles are visible at this zoom.
    let start = report.total_time.as_nanos() * 98 / 100;
    let span = (block_ms(report, sc) * 4.0 * 1e6) as u64;
    let mid = SimTime::from_nanos(start);
    let window = SimTime::from_nanos(start + span);
    println!("final decode window (≈4 blocks):");
    print!("{}", metrics.render_ascii(mid, window, 110));
}

fn main() {
    // The paper's Fig. 15 workload: Mixtral-8×7B in Env 1, batch 64, n=10.
    let setting = Setting::Small8x7bEnv1;
    let bs = if klotski_bench::cheap_mode() { 16 } else { 64 };
    let wl = klotski_bench::workload(bs, 10);
    let sc = Scenario::generate(setting.model(), setting.hardware(), wl, SEED);

    println!(
        "== Fig. 15: pipeline comparison (Mixtral-8x7B, Env 1, bs {bs}, n {}) ==",
        wl.num_batches
    );
    println!("legend: A attention, G gate, E expert compute, W weight-load,");
    println!("        E-load expert transfer, K kv transfer, '.' idle (bubble)");

    // (a) simple overlap: single batch, whole-MoE-layer prefetch. The same
    // total workload is processed batch-by-batch.
    let simple = run(KlotskiConfig::ablation_simple_pipeline(), &sc);
    show(
        "(a) simple overlap, single batch",
        &simple,
        &sc,
        wl.num_batches,
    );

    // (b) Klotski's multi-batch pipeline.
    let klotski = run(KlotskiConfig::full(), &sc);
    show(
        "(b) Klotski, expert-aware multi-batch",
        &klotski,
        &sc,
        wl.num_batches,
    );

    let simple_block = block_ms(&simple, &sc);
    let klotski_block = block_ms(&klotski, &sc);
    println!(
        "\nper-block times: simple ≈ {simple_block:.0} ms vs Klotski ≈ {klotski_block:.0} ms \
         ({:.1}× faster; paper measures the decode block only: ≈2367 ms vs ≈215 ms, 11.0×)",
        simple_block / klotski_block
    );
}
