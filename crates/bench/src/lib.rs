//! # klotski-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§9):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — I/O-overlap gains, dense vs MoE |
//! | `table3` | Table 3 — ablation study |
//! | `fig5`   | Fig. 5 — expert-popularity heatmaps |
//! | `fig10`  | Fig. 10 — end-to-end throughput, 3 scenarios × 7 engines |
//! | `fig11`  | Fig. 11 — throughput–latency trade-off |
//! | `fig12`  | Fig. 12 — GPU memory usage over prefill steps |
//! | `fig13`  | Fig. 13 — prefetch accuracy per layer |
//! | `fig14`  | Fig. 14 — throughput vs n × batch size |
//! | `fig15`  | Fig. 15 — pipeline timelines / bubble reduction |
//! | `serve_sweep` | online serving: arrival rate × admission policy → SLO metrics |
//! | `serve_scale` | multi-replica serving: replicas × rate × dispatch policy → SLO metrics (`BENCH_serve_scale.json`) |
//! | `serve_cluster` | cluster serving: autoscaler × traffic pattern → SLO attainment vs replica-hours (`BENCH_serve_cluster.json`) |
//! | `serve_continuous` | continuous batching vs run-to-completion: slot refill, chunked prefill, priority classes (`BENCH_serve_continuous.json`) |
//! | `native_throughput` | native path tokens/sec: batched expert GEMMs vs the per-token fallback (`BENCH_native.json`) |
//!
//! Run e.g. `cargo run --release -p klotski-bench --bin fig10`.
//! Criterion microbenchmarks live under `benches/`.
//!
//! Setting `KLOTSKI_CHEAP=1` shrinks every bin's sweep (smaller workloads,
//! fewer cells) so CI can *execute* all of them — figure reproduction is
//! smoke-run, not just compiled. Output stays deterministic either way.

#![warn(missing_docs)]

use klotski_baselines::{Accelerate, FastGen, Fiddler, FlexGen, MoeInfinity};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, Scenario};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;

/// The paper's evaluation seed (any fixed value; determinism is the point).
pub const SEED: u64 = 2025;

/// True when `KLOTSKI_CHEAP` is set (to anything but `0`): bins shrink
/// their sweeps to CI-smoke scale. Same tables, fewer/smaller cells.
pub fn cheap_mode() -> bool {
    std::env::var("KLOTSKI_CHEAP")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The batch sizes end-to-end figures sweep (paper: 4–64).
pub fn sweep_batch_sizes() -> Vec<u32> {
    if cheap_mode() {
        vec![4, 8]
    } else {
        vec![4, 8, 16, 32, 64]
    }
}

/// The paper workload at `batch_size` × `n` batches (prompt 512, gen 32),
/// shrunk to prompt 128 / gen 8 / `n ≤ 3` under [`cheap_mode`].
pub fn workload(batch_size: u32, n: u32) -> Workload {
    if cheap_mode() {
        Workload::new(batch_size, n.min(3), 128, 8)
    } else {
        Workload::paper_default(batch_size).with_batches(n)
    }
}

/// The three end-to-end evaluation scenarios of Fig. 10/11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// Mixtral-8×7B on Environment 1 (RTX 3090), n = 15.
    Small8x7bEnv1,
    /// Mixtral-8×22B on Environment 1 (RTX 3090), n = 10 (memory-capped).
    Big8x22bEnv1,
    /// Mixtral-8×22B on Environment 2 (H800), n = 15.
    Big8x22bEnv2,
}

impl Setting {
    /// All three, in the paper's panel order.
    pub const ALL: [Setting; 3] = [
        Setting::Small8x7bEnv1,
        Setting::Big8x22bEnv1,
        Setting::Big8x22bEnv2,
    ];

    /// Panel title.
    pub fn title(self) -> &'static str {
        match self {
            Setting::Small8x7bEnv1 => "Mixtral-8x7B in Env 1",
            Setting::Big8x22bEnv1 => "Mixtral-8x22B in Env 1",
            Setting::Big8x22bEnv2 => "Mixtral-8x22B in Env 2",
        }
    }

    /// Model preset.
    pub fn model(self) -> ModelSpec {
        match self {
            Setting::Small8x7bEnv1 => ModelSpec::mixtral_8x7b(),
            _ => ModelSpec::mixtral_8x22b(),
        }
    }

    /// Hardware preset.
    pub fn hardware(self) -> HardwareSpec {
        match self {
            Setting::Big8x22bEnv2 => HardwareSpec::env2_h800(),
            _ => HardwareSpec::env1_rtx3090(),
        }
    }

    /// The batch-group size the paper uses for this setting (§9.2).
    pub fn n(self) -> u32 {
        match self {
            Setting::Big8x22bEnv1 => 10,
            _ => 15,
        }
    }

    /// Builds the scenario for one batch size (paper workload shape:
    /// prompt 512, 32 generated tokens; shrunk under [`cheap_mode`]).
    pub fn scenario(self, batch_size: u32) -> Scenario {
        Scenario::generate(
            self.model(),
            self.hardware(),
            workload(batch_size, self.n()),
            SEED,
        )
    }
}

/// The seven engines of Fig. 10/11, in presentation order.
pub fn fig10_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(Accelerate),
        Box::new(FastGen),
        Box::new(FlexGen),
        Box::new(MoeInfinity),
        Box::new(Fiddler),
        Box::new(KlotskiEngine::new(KlotskiConfig::full())),
        Box::new(KlotskiEngine::new(KlotskiConfig::quantized())),
    ]
}

/// Formats a throughput cell ("12.34" or "OOM").
pub fn tps_cell(report: &InferenceReport) -> String {
    if report.succeeded() {
        format!("{:.2}", report.throughput_tps())
    } else {
        "OOM".to_owned()
    }
}

/// A simple aligned text table for terminal output.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[0]));
                } else {
                    out.push_str(&format!("  {:>w$}", cell, w = widths[i]));
                }
            }
            out
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_enumerate_paper_panels() {
        assert_eq!(Setting::ALL.len(), 3);
        assert_eq!(Setting::Big8x22bEnv1.n(), 10);
        assert_eq!(Setting::Small8x7bEnv1.n(), 15);
        let sc = Setting::Small8x7bEnv1.scenario(4);
        assert_eq!(sc.workload.total_seqs(), 60);
        assert_eq!(sc.workload.prompt_len, 512);
    }

    #[test]
    fn fig10_roster_has_seven_engines() {
        let engines = fig10_engines();
        assert_eq!(engines.len(), 7);
        assert_eq!(engines[6].name(), "Klotski (q)");
    }

    #[test]
    fn text_table_formats() {
        let mut t = TextTable::new(["bs", "Klotski"]);
        t.row(["4", "7.32"]);
        assert_eq!(t.rows.len(), 1);
        t.print();
    }
}
