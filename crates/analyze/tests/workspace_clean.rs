//! The analyzer run as a workspace test: the tree must be finding-free,
//! so `cargo test --workspace` fails on new violations even where CI's
//! dedicated `--deny` job is not wired up.

use std::path::Path;

#[test]
fn workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root");
    let report = klotski_analyze::analyze_workspace(root).expect("workspace sources readable");
    assert!(report.files_scanned > 50, "scanner found the sources");
    assert!(
        report.clean(),
        "invariant findings in the tree:\n{}",
        klotski_analyze::render(&report)
    );
}
