//! Runtime counterpart of the static `no_alloc` rule: pins the native
//! pipeline's steady-state decode loop to **zero allocations per step**.
//!
//! Method: a counting `GlobalAlloc` tallies allocation *events* on the
//! measuring thread only (`compute_workers: 1` keeps all expert compute
//! inline, so the inference thread sees every hot-loop allocation). Two
//! runs over the same model and prompts differ only in `gen_len`; every
//! one-time cost (expert store build, channel setup, scratch reservation,
//! per-sequence `with_capacity` outputs) is identical across the two, so
//! equal event counts ⟺ the extra decode steps allocated nothing.
//! Counts are compared rather than bytes because output buffers are
//! sized by `gen_len` (same event count, different sizes) by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use klotski_core::native::{run_pipeline, NativePipelineConfig};
use klotski_moe::config::MoeConfig;
use klotski_moe::model::MoeModel;
use klotski_tensor::quant::QuantConfig;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static EVENTS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

fn bump() {
    // `try_with` so allocator callbacks stay safe during TLS teardown.
    let _ = COUNTING.try_with(|c| {
        if c.get() {
            let _ = EVENTS.try_with(|e| e.set(e.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = EVENTS.with(Cell::get);
    COUNTING.with(|c| c.set(true));
    let r = f();
    COUNTING.with(|c| c.set(false));
    (EVENTS.with(Cell::get) - before, r)
}

fn prompts(n: usize, len: usize, vocab: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|s| {
            (0..len)
                .map(|p| ((s * 31 + p * 7 + 3) % vocab) as u32)
                .collect()
        })
        .collect()
}

fn assert_steady_state_alloc_free(cfg: &NativePipelineConfig, what: &str) {
    let model = MoeModel::new(MoeConfig::tiny(7));
    let p = prompts(3, 5, model.config().vocab);
    // Warm process-global one-time state (backend detection, TLS, ...)
    // outside the measured window.
    let _ = run_pipeline(&model, &p, 2, cfg);

    let (short_events, short) = counted(|| run_pipeline(&model, &p, 4, cfg));
    let (long_events, long) = counted(|| run_pipeline(&model, &p, 12, cfg));

    assert!(short_events > 0, "counter is not seeing allocations");
    assert_eq!(long.tokens[0].len(), 12, "long run generated its tokens");
    assert_eq!(short.tokens[0].len(), 4, "short run generated its tokens");
    assert_eq!(
        long_events, short_events,
        "{what}: 8 extra decode steps changed the allocation count \
         ({short_events} events for gen_len=4 vs {long_events} for gen_len=12) — \
         the steady-state loop allocated"
    );
}

#[test]
fn dense_decode_steady_state_is_allocation_free() {
    let cfg = NativePipelineConfig {
        compute_workers: 1,
        ..Default::default()
    };
    assert_steady_state_alloc_free(&cfg, "dense batched pipeline");
}

#[test]
fn fused_quantized_decode_steady_state_is_allocation_free() {
    let cfg = NativePipelineConfig {
        compute_workers: 1,
        quant: Some(QuantConfig::paper_default()),
        fused_quant: true,
        ..Default::default()
    };
    assert_steady_state_alloc_free(&cfg, "fused quantized pipeline");
}

#[test]
fn staged_quantized_decode_steady_state_is_allocation_free() {
    // Staging dequantizes into the circulating slot buffers instead of
    // computing in the quantized domain; the inference thread must stay
    // allocation-free either way. (The per-token `batch_experts: false` /
    // `batch_attention: false` paths are retained benchmark baselines and
    // are documented as *not* pinned.)
    let cfg = NativePipelineConfig {
        compute_workers: 1,
        quant: Some(QuantConfig::paper_default()),
        fused_quant: false,
        ..Default::default()
    };
    assert_steady_state_alloc_free(&cfg, "staged quantized pipeline");
}
