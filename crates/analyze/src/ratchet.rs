//! Per-crate panic-density ratchet.
//!
//! Each entry is the maximum number of non-test `.unwrap()` / `.expect(`
//! sites the crate may contain. The ceilings are set to the measured
//! count at the time they were last touched, so the density can only go
//! down: new panic sites fail `--deny`, and removing sites should be
//! followed by lowering the ceiling here. A crate with no entry fails
//! analysis outright — new crates must opt in explicitly.

pub const PANIC_CEILINGS: &[(&str, usize)] = &[
    ("analyze", 0),
    ("baselines", 11),
    ("bench", 20),
    ("core", 21),
    // The facade crate re-exports only.
    ("klotski", 0),
    ("model", 0),
    // Two `expect`s with documented invariants (h2o eviction, argmax on
    // a non-empty vocabulary).
    ("moe", 2),
    ("serve", 17),
    ("sim", 4),
    // One infallible `chunks_exact(8) -> try_into` conversion.
    ("tensor", 1),
];

/// Looks up the ceiling for a crate key (`crates/<key>/...`, or
/// `klotski` for the root facade sources).
pub fn ceiling(krate: &str) -> Option<usize> {
    PANIC_CEILINGS
        .iter()
        .find(|(k, _)| *k == krate)
        .map(|&(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for w in PANIC_CEILINGS.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert_eq!(ceiling("tensor"), Some(1));
        assert_eq!(ceiling("nonexistent"), None);
    }
}
