//! Per-crate panic-density ratchet.
//!
//! Each entry is the maximum *density* of non-test `.unwrap()` /
//! `.expect(` sites the crate may contain, in sites per 10,000 non-test
//! code lines (tenths of sites-per-KLoC: a ceiling of 45 reads as 4.5
//! sites per KLoC). Density, not an absolute count, so a crate that
//! doubles in size with the same habits neither trips the ratchet nor
//! earns free panic headroom from sheer growth — the ceiling tracks
//! discipline, not volume.
//!
//! The ceilings are pinned to the measured density at the time they were
//! last touched, so the density can only go down: new panic sites fail
//! `--deny`, and removing sites (or adding panic-free code) should be
//! followed by lowering the ceiling here. A crate with no entry fails
//! analysis outright — new crates must opt in explicitly.

pub const PANIC_CEILINGS: &[(&str, usize)] = &[
    ("analyze", 0),
    ("baselines", 116),
    ("bench", 84),
    ("core", 86),
    // The facade crate re-exports only.
    ("klotski", 0),
    ("model", 0),
    // Two `expect`s with documented invariants (h2o eviction, argmax on
    // a non-empty vocabulary).
    ("moe", 18),
    ("serve", 70),
    ("sim", 40),
    // One infallible `chunks_exact(8) -> try_into` conversion.
    ("tensor", 7),
];

/// Looks up the density ceiling for a crate key (`crates/<key>/...`, or
/// `klotski` for the root facade sources), in sites per 10k lines.
pub fn ceiling(krate: &str) -> Option<usize> {
    PANIC_CEILINGS
        .iter()
        .find(|(k, _)| *k == krate)
        .map(|&(_, c)| c)
}

/// Measured density in the ratchet's unit: sites per 10,000 non-test
/// code lines, rounded up so a single site in a tiny crate never rounds
/// to a free zero.
pub fn density_per_10k(sites: usize, code_lines: usize) -> usize {
    let loc = code_lines.max(1);
    (sites * 10_000).div_ceil(loc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for w in PANIC_CEILINGS.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert_eq!(ceiling("tensor"), Some(7));
        assert_eq!(ceiling("nonexistent"), None);
    }

    #[test]
    fn density_rounds_up_and_survives_empty_crates() {
        assert_eq!(density_per_10k(0, 0), 0);
        assert_eq!(density_per_10k(0, 5_000), 0);
        assert_eq!(density_per_10k(1, 10_000), 1);
        assert_eq!(density_per_10k(1, 9_999), 2, "rounds up, not down");
        assert_eq!(density_per_10k(3, 1_000), 30);
        assert_eq!(density_per_10k(2, 0), 20_000, "zero-line guard");
    }
}
