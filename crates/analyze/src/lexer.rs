//! A hand-rolled line lexer for Rust source — just enough lexical
//! structure for reliable token scanning, with no `syn` and no registry
//! dependencies.
//!
//! Each input line is split into **code** (comments removed, string and
//! char-literal contents blanked, delimiters kept) and **comment** text
//! (non-doc `//` line comments and `/* ... */` block comments). Rule
//! token scans run against `code`, so `"HashMap"` inside a string or a
//! doc sentence never trips a rule; analyzer directives are parsed from
//! `comment`, so doc comments can talk *about* directives without
//! issuing them.
//!
//! Handled: nested block comments, raw strings (`r"…"`, `r#"…"#`, any
//! hash depth), byte and raw byte strings, char and byte-char literals
//! (including escapes), and the char-vs-lifetime ambiguity (`'a'` is a
//! literal, `&'a str` is not).

/// One source line, lexically separated.
#[derive(Debug, Default, Clone)]
pub struct LexedLine {
    /// Code with comments dropped and literal contents blanked.
    pub code: String,
    /// Non-doc comment text on this line (directives live here).
    pub comment: String,
}

/// Carry-over lexer state between lines.
enum State {
    Normal,
    /// Inside a (possibly nested) block comment; `depth >= 1`. `doc` is
    /// true for `/**`/`/*!` doc blocks, whose text is not directive
    /// comment text.
    Block {
        depth: u32,
        doc: bool,
    },
    /// Inside a normal (escaped) string literal.
    Str,
    /// Inside a raw string closed by `"` + `hashes` `#`s.
    RawStr {
        hashes: u32,
    },
}

/// Lexes a whole source file into per-line code/comment channels.
pub fn lex(src: &str) -> Vec<LexedLine> {
    let mut state = State::Normal;
    src.lines().map(|line| lex_line(line, &mut state)).collect()
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex_line(line: &str, state: &mut State) -> LexedLine {
    let b: Vec<char> = line.chars().collect();
    let mut out = LexedLine::default();
    let mut i = 0usize;
    while i < b.len() {
        match state {
            State::Block { depth, doc } => {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    *depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    *depth -= 1;
                    i += 2;
                    if *depth == 0 {
                        *state = State::Normal;
                    }
                } else {
                    if !*doc {
                        out.comment.push(b[i]);
                    }
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == '\\' {
                    out.code.push(' ');
                    if i + 1 < b.len() {
                        out.code.push(' ');
                    }
                    i += 2;
                } else if b[i] == '"' {
                    out.code.push('"');
                    *state = State::Normal;
                    i += 1;
                } else {
                    out.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if b[i] == '"' {
                    let n = *hashes as usize;
                    let closes = (1..=n).all(|d| b.get(i + d) == Some(&'#'));
                    if closes {
                        out.code.push('"');
                        for _ in 0..n {
                            out.code.push('#');
                        }
                        i += 1 + n;
                        *state = State::Normal;
                        continue;
                    }
                }
                out.code.push(' ');
                i += 1;
            }
            State::Normal => {
                let c = b[i];
                let prev_ident = i > 0 && is_ident(b[i - 1]);
                if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
                    // Line comment; doc forms (`///` but not `////`, and
                    // `//!`) carry prose, not directives.
                    let doc = (b.get(i + 2) == Some(&'/') && b.get(i + 3) != Some(&'/'))
                        || b.get(i + 2) == Some(&'!');
                    if !doc {
                        out.comment.extend(&b[i + 2..]);
                    }
                    break;
                } else if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    let doc = matches!(b.get(i + 2), Some(&'*') | Some(&'!'))
                        && b.get(i + 3) != Some(&'/');
                    *state = State::Block { depth: 1, doc };
                    i += 2;
                } else if c == '"' {
                    out.code.push('"');
                    *state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string or byte-char prefix.
                    let mut j = i + 1;
                    let mut raw = c == 'r';
                    if c == 'b' && b.get(j) == Some(&'r') {
                        raw = true;
                        j += 1;
                    }
                    if raw {
                        let mut hashes = 0u32;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') {
                            for &d in &b[i..=j] {
                                out.code.push(d);
                            }
                            *state = State::RawStr { hashes };
                            i = j + 1;
                            continue;
                        }
                    } else if b.get(j) == Some(&'"') {
                        out.code.push('b');
                        out.code.push('"');
                        *state = State::Str;
                        i = j + 1;
                        continue;
                    }
                    out.code.push(c);
                    i += 1;
                } else if c == '\'' {
                    // Char literal or lifetime. A literal is `'\…'` or
                    // `'x'`; anything else (`'a`, `'static`, `'_`) is a
                    // lifetime/label and stays plain code.
                    if b.get(i + 1) == Some(&'\\') {
                        out.code.push('\'');
                        out.code.push(' ');
                        let mut j = i + 2;
                        // Skip the escaped char, then scan to the close.
                        if j < b.len() {
                            j += 1;
                        }
                        while j < b.len() && b[j] != '\'' {
                            out.code.push(' ');
                            j += 1;
                        }
                        out.code.push('\'');
                        i = j + 1;
                    } else if b.get(i + 2) == Some(&'\'') {
                        out.code.push('\'');
                        out.code.push(' ');
                        out.code.push('\'');
                        i += 3;
                    } else {
                        out.code.push('\'');
                        i += 1;
                    }
                } else {
                    out.code.push(c);
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_split_out() {
        let lines = lex("let x = 1; // analyze: no_alloc\n/// HashMap doc\nlet y = 2;");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " analyze: no_alloc");
        assert_eq!(lines[1].code, "");
        assert_eq!(lines[1].comment, "", "doc comments carry no directives");
        assert_eq!(lines[2].code, "let y = 2;");
    }

    #[test]
    fn strings_are_blanked_but_delimited() {
        let c = codes(r#"let s = "HashMap { }";"#);
        assert!(!c[0].contains("HashMap"));
        assert!(!c[0].contains('{'));
        assert!(c[0].starts_with("let s = \""));
        assert!(c[0].ends_with("\";"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"quote \" and HashMap\"# + r\"x\";\nlet t = br##\"y\"##;";
        let c = codes(src);
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("r#\""));
        assert!(c[0].ends_with(';'));
        assert!(!c[1].contains('y'));
    }

    #[test]
    fn multiline_raw_string_spans_lines() {
        let src = "let s = r#\"line one {\nstill HashMap inside\n\"# ; let x = 1;";
        let c = codes(src);
        assert!(!c[1].contains("HashMap"));
        assert!(c[2].contains("let x = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b\nc";
        let c = codes(src);
        assert_eq!(c[0].replace(' ', ""), "ab");
        assert_eq!(c[1], "c");
    }

    #[test]
    fn block_comment_spanning_lines_collects_text() {
        let lines = lex("x /* first\nsecond */ y");
        assert_eq!(lines[0].code.trim(), "x");
        assert!(lines[0].comment.contains("first"));
        assert!(lines[1].comment.contains("second"));
        assert!(lines[1].code.contains('y'));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let c = codes("let a: &'x str = f::<'x>(); let q = 'q'; let nl = '\\n'; let brace = '{';");
        assert!(c[0].contains("&'x str"), "lifetime untouched: {}", c[0]);
        assert!(
            !c[0].contains('q') || c[0].contains("let q"),
            "char blanked"
        );
        assert!(!c[0].contains('{'), "brace char literal blanked: {}", c[0]);
    }

    #[test]
    fn escaped_quote_in_string() {
        let c = codes(r#"let s = "a\"b{"; let x = 1;"#);
        assert!(c[0].contains("let x = 1;"), "string must close: {}", c[0]);
        assert!(!c[0].contains('{'));
    }

    #[test]
    fn multiline_string_state_carries() {
        let c = codes("let s = \"start {\nmiddle HashMap\nend\"; let z = 9;");
        assert!(!c[0].contains('{'));
        assert!(!c[1].contains("HashMap"));
        assert!(c[2].contains("let z = 9;"));
    }

    #[test]
    fn doc_block_comments_carry_no_directives() {
        let lines = lex("/** analyze: no_alloc */ fn f() {}");
        assert_eq!(lines[0].comment, "");
        assert!(lines[0].code.contains("fn f() {}"));
    }
}
