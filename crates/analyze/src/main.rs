//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p klotski-analyze            # report only, always exit 0
//! cargo run -p klotski-analyze -- --deny  # exit 1 on any finding (CI)
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // This file lives at <root>/crates/analyze; the workspace root is
    // two levels up from the crate manifest.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let deny = std::env::args().skip(1).any(|a| a == "--deny");
    let root = workspace_root();
    match klotski_analyze::analyze_workspace(&root) {
        Ok(report) => {
            print!("{}", klotski_analyze::render(&report));
            if deny && !report.clean() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("klotski-analyze: failed to read workspace sources: {err}");
            ExitCode::FAILURE
        }
    }
}
