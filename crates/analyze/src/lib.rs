//! `klotski-analyze` — a workspace invariant checker.
//!
//! Klotski's experiments lean on three properties the compiler cannot
//! enforce: runs are *deterministic* (same inputs → same schedule, same
//! tokens), the compute kernels are *bit-exact* across backends, and the
//! steady-state decode path is *allocation-free*. This crate is a small,
//! dependency-free static analyzer that walks the workspace's own
//! sources and checks the lexical footprint of those invariants:
//!
//! 1. **determinism** — no `HashMap`/`HashSet`/`Instant::now`/
//!    `SystemTime` in non-test library code (ordered collections and
//!    simulated time only).
//! 2. **bit_exact** — no fused multiply-add (`mul_add`, FMA intrinsics)
//!    in `crates/tensor` or `crates/moe`.
//! 3. **unsafe_hygiene** — every `unsafe` carries a nearby `// SAFETY:`
//!    comment.
//! 4. **no_alloc** — blocks marked `// analyze: no_alloc` contain no
//!    allocation tokens (backed dynamically by the alloc-pin test).
//! 5. **panic** — per-crate ratcheted ceilings on `.unwrap()`/`.expect(`
//!    density in non-test code (see [`ratchet`]).
//!
//! Genuine exceptions are allowlisted in place with
//! `analyze: allow(<rule>) -- <justification>` comments; stale or
//! unjustified allows are themselves findings. Run it with
//! `cargo run -p klotski-analyze` (add `--deny` to exit nonzero on any
//! finding, as CI does).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod ratchet;
pub mod rules;

pub use rules::{analyze_source, Finding};

/// Panic-ratchet standing for one crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateCount {
    pub krate: String,
    /// Measured non-test unwrap/expect sites.
    pub sites: usize,
    /// Non-test, non-blank code lines — the density denominator.
    pub code_lines: usize,
    /// Measured density, in sites per 10k non-test lines (rounded up).
    pub density: usize,
    /// Ratchet density ceiling, if the crate is registered.
    pub ceiling: Option<usize>,
}

/// Whole-workspace analysis result.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    /// All findings, sorted by (path, line, rule, message).
    pub findings: Vec<Finding>,
    /// Per-crate panic counts, sorted by crate key.
    pub panics: Vec<CrateCount>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The source directories the analyzer covers: the root facade plus
/// every crate under `crates/` (including this one — the analyzer must
/// hold itself to the same rules). Vendored stand-ins are third-party
/// idiom and stay out of scope.
pub fn source_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        roots.push(facade);
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        names.sort();
        for dir in names {
            let src = dir.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    Ok(roots)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators, for stable reports
/// across platforms.
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Crate key for the ratchet: `crates/<key>/...`, else the root facade.
fn crate_key(rel: &str) -> String {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("crates").to_string(),
        None => "klotski".to_string(),
    }
}

/// Runs the full analysis over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for src_root in source_roots(root)? {
        collect_rs(&src_root, &mut files)?;
    }

    let mut report = Report::default();
    let mut panic_counts: Vec<(String, usize, usize)> = Vec::new();
    for file in &files {
        let rel = rel_path(root, file);
        let src = fs::read_to_string(file)?;
        let file_rep = rules::analyze_source(&rel, &src);
        report.findings.extend(file_rep.findings);
        report.files_scanned += 1;
        let key = crate_key(&rel);
        match panic_counts.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, n, loc)) => {
                *n += file_rep.panic_sites;
                *loc += file_rep.code_lines;
            }
            None => panic_counts.push((key, file_rep.panic_sites, file_rep.code_lines)),
        }
    }

    panic_counts.sort();
    for (krate, sites, code_lines) in panic_counts {
        let ceiling = ratchet::ceiling(&krate);
        let density = ratchet::density_per_10k(sites, code_lines);
        match ceiling {
            None => report.findings.push(Finding {
                path: format!("crates/{krate}"),
                line: 0,
                rule: rules::RULE_PANIC,
                message: format!(
                    "crate `{krate}` has no panic-ratchet ceiling; add it to crates/analyze/src/ratchet.rs"
                ),
            }),
            Some(max) if density > max => report.findings.push(Finding {
                path: format!("crates/{krate}"),
                line: 0,
                rule: rules::RULE_PANIC,
                message: format!(
                    "crate `{krate}` has {sites} non-test unwrap/expect sites in {code_lines} lines \
                     ({density}/10k), over its ratchet density ceiling of {max}/10k"
                ),
            }),
            Some(_) => {}
        }
        report.panics.push(CrateCount {
            krate,
            sites,
            code_lines,
            density,
            ceiling,
        });
    }

    report.findings.sort();
    Ok(report)
}

/// Renders the report in its stable, diff-friendly text form.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "klotski-analyze: {} files scanned, {} finding(s)\n",
        report.files_scanned,
        report.findings.len()
    ));
    out.push_str(
        "panic ratchet (non-test unwrap/expect density, sites per 10k lines / ceiling):\n",
    );
    for c in &report.panics {
        match c.ceiling {
            Some(max) => out.push_str(&format!(
                "  {:<12} {:>3} sites / {:>5} lines = {:>3} / {}\n",
                c.krate, c.sites, c.code_lines, c.density, max
            )),
            None => out.push_str(&format!(
                "  {:<12} {:>3} sites / {:>5} lines = {:>3} / (unregistered)\n",
                c.krate, c.sites, c.code_lines, c.density
            )),
        }
    }
    for f in &report.findings {
        if f.line == 0 {
            out.push_str(&format!("{}: [{}] {}\n", f.path, f.rule, f.message));
        } else {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
    }
    out
}
