//! The rule engine: five invariant checks over lexed source, with a
//! per-line allowlist.
//!
//! Directives are ordinary (non-doc) `//` comments:
//!
//! * `analyze: no_alloc` — the next brace-delimited block must not
//!   lexically contain allocation tokens.
//! * `analyze: allow(<rule>) -- <justification>` — suppresses a finding
//!   of `<rule>` on the same line or the line directly below. The
//!   justification is mandatory, unknown rule names are errors, and an
//!   allow that suppresses nothing is itself reported (stale allows rot).

use crate::lexer::{lex, LexedLine};

/// Rule identifiers, also the names accepted by `allow(...)`.
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_BIT_EXACT: &str = "bit_exact";
pub const RULE_UNSAFE: &str = "unsafe_hygiene";
pub const RULE_NO_ALLOC: &str = "no_alloc";
pub const RULE_PANIC: &str = "panic";
/// Malformed or stale directives are findings of this pseudo-rule.
pub const RULE_DIRECTIVE: &str = "directive";

const ALLOWABLE_RULES: &[&str] = &[RULE_DETERMINISM, RULE_BIT_EXACT, RULE_UNSAFE, RULE_NO_ALLOC];

/// Unordered-iteration and wall-clock tokens. Simulated time
/// (`klotski-sim`) is the sanctioned clock; everything else must be
/// reproducible run-to-run.
const DETERMINISM_TOKENS: &[&str] = &["HashMap", "HashSet", "Instant::now", "SystemTime"];

/// Fused multiply-add contracts away the intermediate rounding that the
/// scalar reference performs, so any use breaks scalar==SIMD byte
/// equality in the numeric crates.
const BIT_EXACT_TOKENS: &[&str] = &["mul_add", "fmadd", "vfma"];

/// Tokens that always allocate. `resize`/`reserve`/`extend` are *not*
/// listed: against pre-reserved buffers they are amortized-free, which
/// is exactly the pattern the hot paths use (and the alloc-pin test
/// verifies the steady state dynamically).
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec",
    ".collect",
    "Box::new",
    "format!",
    "String::from",
    "String::new",
    ".to_string",
    ".to_owned",
    ".clone()",
    "with_capacity",
    "Matrix::zeros",
];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 10;

/// How far below its marker a `no_alloc` block may open.
const NO_ALLOC_SEARCH: usize = 20;

/// One reported violation. Ordering is the report ordering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    /// 1-based; 0 marks a whole-crate finding.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// Per-file analysis result.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    /// Non-test `.unwrap()` / `.expect(` sites, for the panic ratchet.
    pub panic_sites: usize,
    /// Non-test, non-blank code lines — the denominator of the panic
    /// density ratchet. Comment-only lines do not count: padding a file
    /// with prose must not buy panic headroom.
    pub code_lines: usize,
}

enum Directive {
    NoAlloc,
    Allow { rule: String },
}

struct Allow {
    line: usize,
    rule: String,
    used: bool,
}

/// Runs every per-file rule over one source file. `rel_path` is the
/// workspace-relative path with `/` separators; it selects which rules
/// apply (e.g. bit-exactness only guards the numeric crates).
pub fn analyze_source(rel_path: &str, src: &str) -> FileReport {
    let lines = lex(src);
    let in_test = test_regions(&lines);
    let mut rep = FileReport::default();

    // Pass 1: directives.
    let mut allows: Vec<Allow> = Vec::new();
    let mut no_alloc_markers: Vec<usize> = Vec::new();
    for (l, line) in lines.iter().enumerate() {
        match parse_directive(&line.comment) {
            None => {}
            Some(Ok(Directive::NoAlloc)) => no_alloc_markers.push(l),
            Some(Ok(Directive::Allow { rule })) => allows.push(Allow {
                line: l,
                rule,
                used: false,
            }),
            Some(Err(msg)) => rep
                .findings
                .push(finding(rel_path, l + 1, RULE_DIRECTIVE, msg)),
        }
    }

    // A finding at line `l` (0-based) is suppressed by an allow on the
    // same line or the line directly above.
    let suppress = |allows: &mut Vec<Allow>, l: usize, rule: &str| -> bool {
        for a in allows.iter_mut() {
            if a.rule == rule && (a.line == l || a.line + 1 == l) {
                a.used = true;
                return true;
            }
        }
        false
    };

    // Pass 2: token rules.
    let bit_exact_scope =
        rel_path.starts_with("crates/tensor/") || rel_path.starts_with("crates/moe/");
    for (l, line) in lines.iter().enumerate() {
        if !in_test[l] {
            for tok in DETERMINISM_TOKENS {
                if has_token(&line.code, tok) && !suppress(&mut allows, l, RULE_DETERMINISM) {
                    rep.findings.push(finding(
                        rel_path,
                        l + 1,
                        RULE_DETERMINISM,
                        format!("`{tok}` in non-test code: unordered iteration / wall-clock reads make runs non-reproducible"),
                    ));
                }
            }
            rep.panic_sites += count_token(&line.code, ".unwrap()");
            rep.panic_sites += count_token(&line.code, ".expect(");
            if !line.code.trim().is_empty() {
                rep.code_lines += 1;
            }
        }
        if bit_exact_scope {
            for tok in BIT_EXACT_TOKENS {
                if has_token(&line.code, tok) && !suppress(&mut allows, l, RULE_BIT_EXACT) {
                    rep.findings.push(finding(
                        rel_path,
                        l + 1,
                        RULE_BIT_EXACT,
                        format!("`{tok}` fuses the intermediate rounding and breaks scalar==SIMD byte equality"),
                    ));
                }
            }
        }
        if has_token(&line.code, "unsafe") {
            let lo = l.saturating_sub(SAFETY_WINDOW);
            let documented = lines[lo..=l]
                .iter()
                .any(|ln| ln.comment.contains("SAFETY:"));
            if !documented && !suppress(&mut allows, l, RULE_UNSAFE) {
                rep.findings.push(finding(
                    rel_path,
                    l + 1,
                    RULE_UNSAFE,
                    format!("`unsafe` without a `// SAFETY:` comment on the same line or the {SAFETY_WINDOW} lines above"),
                ));
            }
        }
    }

    // Pass 3: no_alloc blocks.
    for &m in &no_alloc_markers {
        match block_span(&lines, m) {
            None => rep.findings.push(finding(
                rel_path,
                m + 1,
                RULE_DIRECTIVE,
                format!(
                    "`analyze: no_alloc` marker with no `{{` block within {NO_ALLOC_SEARCH} lines"
                ),
            )),
            Some((start, end)) => {
                for (l, line) in lines.iter().enumerate().take(end + 1).skip(start) {
                    for tok in ALLOC_TOKENS {
                        if has_token(&line.code, tok) && !suppress(&mut allows, l, RULE_NO_ALLOC) {
                            rep.findings.push(finding(
                                rel_path,
                                l + 1,
                                RULE_NO_ALLOC,
                                format!(
                                    "`{tok}` allocates inside a block marked `analyze: no_alloc`"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Pass 4: stale allows.
    for a in &allows {
        if !a.used {
            rep.findings.push(finding(
                rel_path,
                a.line + 1,
                RULE_DIRECTIVE,
                format!(
                    "stale `allow({})`: it suppresses nothing on this or the next line",
                    a.rule
                ),
            ));
        }
    }

    rep.findings.sort();
    rep
}

fn finding(path: &str, line: usize, rule: &'static str, message: impl Into<String>) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        rule,
        message: message.into(),
    }
}

fn parse_directive(comment: &str) -> Option<Result<Directive, String>> {
    let at = comment.find("analyze:")?;
    let rest = comment[at + "analyze:".len()..].trim_start();
    if rest.starts_with("no_alloc") {
        return Some(Ok(Directive::NoAlloc));
    }
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Some(Err(format!(
            "unrecognized directive `analyze: {}` (expected `no_alloc` or `allow(<rule>) -- <justification>`)",
            rest.split_whitespace().next().unwrap_or("")
        )));
    };
    let Some(close) = inner.find(')') else {
        return Some(Err("unclosed `allow(`".to_string()));
    };
    let rule = inner[..close].trim().to_string();
    if !ALLOWABLE_RULES.contains(&rule.as_str()) {
        return Some(Err(if rule == RULE_PANIC {
            "rule `panic` is ratcheted per crate and cannot be allowlisted per line".to_string()
        } else {
            format!("unknown rule `{rule}` in `allow(...)`")
        }));
    }
    let tail = inner[close + 1..].trim_start();
    let justified = tail
        .strip_prefix("--")
        .map(str::trim)
        .is_some_and(|j| !j.is_empty());
    if !justified {
        return Some(Err(format!(
            "`allow({rule})` without a justification (expected `-- <why this is sound>`)"
        )));
    }
    Some(Ok(Directive::Allow { rule }))
}

/// Marks lines belonging to `#[cfg(test)]` items (and bare `#[test]`
/// functions) by brace matching from the attribute.
fn test_regions(lines: &[LexedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        let is_marker = !mask[i]
            && (code.contains("#[cfg(test)]")
                || code.contains("#[cfg(all(test")
                || code.contains("#[test]"));
        if !is_marker {
            i += 1;
            continue;
        }
        let mut depth: i32 = 0;
        let mut opened = false;
        let mut j = i;
        'scan: while j < lines.len() {
            mask[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            break 'scan;
                        }
                    }
                    // `#[cfg(test)] mod tests;` declares an out-of-line
                    // module: nothing more to mask in this file.
                    ';' if !opened => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Finds the brace block a `no_alloc` marker on line `m` attaches to:
/// the first `{` on or after the marker line, matched to its close.
/// Returns inclusive 0-based (start, end) lines.
fn block_span(lines: &[LexedLine], m: usize) -> Option<(usize, usize)> {
    let limit = (m + NO_ALLOC_SEARCH).min(lines.len().saturating_sub(1));
    let (start, col) = (m..=limit).find_map(|j| lines[j].code.find('{').map(|p| (j, p)))?;
    let mut depth: i32 = 0;
    for (k, line) in lines.iter().enumerate().skip(start) {
        let code = &line.code;
        let chars: Box<dyn Iterator<Item = char>> = if k == start {
            Box::new(code.chars().skip(code[..col].chars().count()))
        } else {
            Box::new(code.chars())
        };
        for ch in chars {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((start, k));
                    }
                }
                _ => {}
            }
        }
    }
    // Unclosed block: treat everything to EOF as the span rather than
    // silently checking nothing.
    Some((start, lines.len().saturating_sub(1)))
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Word-boundary-aware substring match: when the token starts or ends
/// with an identifier character, the neighbouring source character must
/// not extend the identifier (`MyHashMapLike` does not match `HashMap`).
fn has_token(code: &str, tok: &str) -> bool {
    count_token(code, tok) > 0
}

fn count_token(code: &str, tok: &str) -> usize {
    let first_ident = tok.bytes().next().is_some_and(is_ident_byte);
    let last_ident = tok.bytes().last().is_some_and(is_ident_byte);
    let bytes = code.as_bytes();
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = code[from..].find(tok) {
        let p = from + pos;
        let before_ok = !first_ident || p == 0 || !is_ident_byte(bytes[p - 1]);
        let end = p + tok.len();
        let after_ok = !last_ident || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            n += 1;
        }
        from = p + tok.len();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<(usize, &'static str)> {
        analyze_source(path, src)
            .findings
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn determinism_catches_hashmap_outside_tests() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = todo(); }\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let got = rules_of("crates/core/src/x.rs", src);
        assert_eq!(got, vec![(1, RULE_DETERMINISM), (2, RULE_DETERMINISM)]);
    }

    #[test]
    fn determinism_catches_wall_clock() {
        let got = rules_of(
            "crates/serve/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(got, vec![(1, RULE_DETERMINISM)]);
    }

    #[test]
    fn determinism_ignores_strings_and_docs() {
        let src = "/// A HashMap-like structure, SystemTime notes.\nfn f() { let s = \"HashMap SystemTime\"; }\n";
        assert!(rules_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_suppresses_and_is_consumed() {
        let src = "// analyze: allow(determinism) -- timing site is reported only\nlet t = Instant::now();\n";
        assert!(rules_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_an_error() {
        let src = "// analyze: allow(determinism)\nlet t = Instant::now();\n";
        let got = rules_of("crates/core/src/x.rs", src);
        assert!(got.contains(&(1, RULE_DIRECTIVE)), "{got:?}");
        assert!(
            got.contains(&(2, RULE_DETERMINISM)),
            "unjustified allow must not suppress"
        );
    }

    #[test]
    fn stale_allow_is_an_error() {
        let src = "// analyze: allow(determinism) -- nothing here needs it\nlet x = 1;\n";
        assert_eq!(
            rules_of("crates/core/src/x.rs", src),
            vec![(1, RULE_DIRECTIVE)]
        );
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// analyze: allow(speed) -- gotta go fast\nlet x = 1;\n";
        assert_eq!(
            rules_of("crates/core/src/x.rs", src),
            vec![(1, RULE_DIRECTIVE)]
        );
    }

    #[test]
    fn bit_exact_scoped_to_numeric_crates() {
        let src = "fn f(a: f32) -> f32 { a.mul_add(2.0, 1.0) }\n";
        assert_eq!(
            rules_of("crates/tensor/src/x.rs", src),
            vec![(1, RULE_BIT_EXACT)]
        );
        assert_eq!(
            rules_of("crates/moe/src/x.rs", src),
            vec![(1, RULE_BIT_EXACT)]
        );
        assert!(rules_of("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment_within_window() {
        let ok = "// SAFETY: bounds checked by caller.\n#[inline]\nunsafe fn f() {}\n";
        assert!(rules_of("crates/tensor/src/x.rs", ok).is_empty());
        let bad = "unsafe fn f() {}\n";
        assert_eq!(
            rules_of("crates/tensor/src/x.rs", bad),
            vec![(1, RULE_UNSAFE)]
        );
        let doc_only =
            "/// # Safety\n/// SAFETY: in a doc comment does not count.\nunsafe fn f() {}\n";
        assert_eq!(
            rules_of("crates/tensor/src/x.rs", doc_only),
            vec![(3, RULE_UNSAFE)]
        );
    }

    #[test]
    fn no_alloc_block_flags_allocation_tokens() {
        let src = "// analyze: no_alloc\nfn hot(\n    xs: &[f32],\n) {\n    let v = vec![0.0; 8];\n    let w = xs.to_vec();\n}\nfn cold() { let v = vec![1]; }\n";
        let got = rules_of("crates/tensor/src/x.rs", src);
        assert_eq!(got, vec![(5, RULE_NO_ALLOC), (6, RULE_NO_ALLOC)]);
    }

    #[test]
    fn no_alloc_respects_block_extent_and_allows() {
        let src = "// analyze: no_alloc\nfn hot() {\n    // analyze: allow(no_alloc) -- one-time growth, amortized away\n    let v = Vec::new();\n}\n";
        assert!(rules_of("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn no_alloc_marker_without_block_is_an_error() {
        let src = "// analyze: no_alloc\nconst X: usize = 3;\n";
        assert_eq!(
            rules_of("crates/tensor/src/x.rs", src),
            vec![(1, RULE_DIRECTIVE)]
        );
    }

    #[test]
    fn panic_sites_counted_outside_tests_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); z.unwrap_or(0); }\n#[cfg(test)]\nmod tests {\n    fn g() { q.unwrap(); }\n}\n";
        let rep = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(
            rep.panic_sites, 2,
            "unwrap_or must not count, test unwraps must not count"
        );
    }

    #[test]
    fn code_lines_skip_tests_blanks_and_comment_only_lines() {
        let src = "//! Doc header.\nfn f() {\n    let x = 1;\n}\n\n// a comment\n#[cfg(test)]\nmod tests {\n    fn g() {}\n}\n";
        let rep = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(
            rep.code_lines, 3,
            "only `fn f() {{`, its body line, and its `}}` are non-test code"
        );
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(has_token("HashMap::new()", "HashMap"));
        assert_eq!(count_token("a.unwrap_or(b.unwrap())", ".unwrap()"), 1);
    }

    #[test]
    fn bare_test_attribute_masks_function() {
        let src = "#[test]\nfn check() {\n    let m = HashMap::new();\n    m.unwrap();\n}\n";
        let rep = analyze_source("crates/core/src/x.rs", src);
        assert!(rep.findings.is_empty());
        assert_eq!(rep.panic_sites, 0);
    }
}
