//! Explicit SIMD kernel backends for the `matrix` micro-kernels.
//!
//! The register-blocked scalar micro-kernels in [`crate::matrix`] are
//! already SIMD-*shaped*: the `nt` GEMM carries [`NT_COLS`](crate::matrix)
//! independent output-column accumulators, and the AV kernel carries every
//! output element across a 4-row block. This module makes that shape real
//! with `core::arch` x86-64 intrinsics, behind the `simd` cargo feature:
//!
//! * **SSE2** (the x86-64 baseline, always available): 4-lane vectors, the
//!   8 column accumulators split into two halves;
//! * **AVX2** (runtime-detected via `is_x86_feature_detected!`): 8-lane
//!   vectors, one register per accumulator row.
//!
//! # The bit-exactness contract
//!
//! Every kernel in this crate pins the *per-element accumulation order*:
//! each output element is one sequential ascending-k chain of
//! `acc += a * b` with the product rounded before the add. The SIMD
//! backends therefore vectorize **across output elements** — each vector
//! lane holds one output's accumulator and advances in the same
//! ascending-k order as the scalar chain — and use separate
//! `mul`/`add` instructions, **never** fused multiply-add: an FMA rounds
//! once where the scalar reference rounds twice, which would break the
//! byte-for-byte equality the native pipeline's reference comparisons and
//! proptests assert. (The CPU tier is still detected as "AVX2+FMA" — the
//! win comes from 8-wide lanes and the shared transposed loads, not from
//! fusing.)
//!
//! Column vectors for the `nt` kernels (`{rows[0][k], …, rows[7][k]}`) are
//! produced by an in-register 8×8 (or 4×4) transpose of a block of
//! consecutive `b`-row loads, so the inner loop does contiguous loads
//! only; k-tails shorter than a block fall back to the scalar chain
//! continuation (same lanes, same order).
//!
//! # Backend selection
//!
//! [`active_backend`] is what the public kernels use: the best detected
//! backend, unless overridden process-wide with [`force_backend`] (or the
//! scoped [`BackendGuard`]). Because every backend is bit-identical, a
//! concurrent override is *observable only in wall-clock*: benchmarks force
//! backends sequentially, tests that must pin a backend use the
//! `*_with_backend` kernel entry points instead of the global.
//!
//! Without the `simd` cargo feature (or off x86-64) the only available
//! backend is [`KernelBackend::Scalar`] and this module is pure plumbing.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation services the register-blocked micro-kernels.
///
/// All backends produce **byte-identical** results; the choice only moves
/// wall-clock. Ordered by capability: a backend is available when the
/// build (cargo feature `simd`, x86-64 target) and the CPU support it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelBackend {
    /// Portable scalar Rust — the pinned reference all other backends must
    /// match bit-for-bit. Always available.
    Scalar,
    /// x86-64 SSE2: 4-lane `f32` vectors. Part of the x86-64 baseline, so
    /// available whenever the `simd` feature is compiled in on x86-64.
    Sse2,
    /// x86-64 AVX2: 8-lane `f32` vectors (detected together with FMA,
    /// though the kernels deliberately use separate mul/add — see the
    /// module docs). Requires runtime CPU support.
    Avx2,
}

impl KernelBackend {
    /// Stable lower-case name, as recorded in bench JSON lines.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Whether this build *and* this CPU can run the backend.
    pub fn is_available(self) -> bool {
        self <= detected_backend()
    }

    fn from_u8(v: u8) -> Option<KernelBackend> {
        match v {
            1 => Some(KernelBackend::Scalar),
            2 => Some(KernelBackend::Sse2),
            3 => Some(KernelBackend::Avx2),
            _ => None,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            KernelBackend::Scalar => 1,
            KernelBackend::Sse2 => 2,
            KernelBackend::Avx2 => 3,
        }
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The best backend this build supports on this CPU.
///
/// `Scalar` when the `simd` cargo feature is off or the target is not
/// x86-64; otherwise `Sse2` (the x86-64 baseline) upgraded to `Avx2` when
/// the CPU reports it. Detection runs once and is cached.
pub fn detected_backend() -> KernelBackend {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<KernelBackend> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2") {
                KernelBackend::Avx2
            } else {
                KernelBackend::Sse2
            }
        })
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    KernelBackend::Scalar
}

/// 0 = no override (use [`detected_backend`]); else `KernelBackend::to_u8`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces every kernel entry point that doesn't take an explicit backend
/// to use `backend` (or clears the override with `None`). Process-global;
/// prefer the scoped [`BackendGuard`] unless the override should outlive
/// the current scope.
///
/// # Panics
///
/// Panics if `backend` is not available in this build / on this CPU —
/// silently falling back would make an A/B benchmark lie.
pub fn force_backend(backend: Option<KernelBackend>) {
    if let Some(b) = backend {
        assert!(
            b.is_available(),
            "kernel backend {b} unavailable (detected: {})",
            detected_backend()
        );
    }
    FORCED.store(backend.map_or(0, KernelBackend::to_u8), Ordering::Relaxed);
}

/// The backend the implicit-backend kernel entry points currently use:
/// the forced override if set, else [`detected_backend`].
pub fn active_backend() -> KernelBackend {
    KernelBackend::from_u8(FORCED.load(Ordering::Relaxed)).unwrap_or_else(detected_backend)
}

/// Scoped [`force_backend`]: forces on construction, restores the previous
/// override on drop. Used by `run_pipeline` to honor its `kernel_backend`
/// config axis for the duration of a run.
#[derive(Debug)]
pub struct BackendGuard {
    prev: u8,
}

impl BackendGuard {
    /// Forces `backend` until the guard drops.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is unavailable (see [`force_backend`]).
    pub fn force(backend: KernelBackend) -> Self {
        let prev = FORCED.load(Ordering::Relaxed);
        force_backend(Some(backend));
        BackendGuard { prev }
    }
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        FORCED.store(self.prev, Ordering::Relaxed);
    }
}

/// The kernel-relevant CPU features this machine reports, as a stable
/// comma-joined list (e.g. `"sse2,sse4.1,avx,avx2,fma"`) — recorded in
/// bench JSON entries so perf-trajectory lines are comparable across
/// machines. `"portable"` off x86-64.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats: Vec<&str> = vec!["sse2"]; // x86-64 baseline
        if std::arch::is_x86_feature_detected!("sse4.1") {
            feats.push("sse4.1");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        feats.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    "portable".to_owned()
}

/// The x86-64 intrinsic kernels. Each mirrors one scalar micro-kernel in
/// `matrix.rs` exactly: same per-lane accumulation order, same rounding
/// (separate mul + add), scalar chain continuation for k-tails.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod x86 {
    use core::arch::x86_64::*;

    /// Loads 8 consecutive floats from each of 8 rows at column `kb` and
    /// transposes in registers: returned `c[t]` holds lane `u` =
    /// `rows[u][kb + t]` — the column vectors the nt micro-kernels consume.
    ///
    /// # Safety
    ///
    /// Requires AVX; every `rows[u]` must have at least `kb + 8` elements.
    #[inline]
    #[target_feature(enable = "avx")]
    // SAFETY: the caller guarantees AVX and `kb + 8 <= rows[u].len()` for
    // every `u`, so each `loadu` reads 8 in-bounds floats from
    // `rows[u].as_ptr().add(kb)`; `loadu` has no alignment requirement,
    // and the shuffles operate purely on register values.
    unsafe fn transpose_8x8(rows: &[&[f32]; 8], kb: usize) -> [__m256; 8] {
        let r0 = _mm256_loadu_ps(rows[0].as_ptr().add(kb));
        let r1 = _mm256_loadu_ps(rows[1].as_ptr().add(kb));
        let r2 = _mm256_loadu_ps(rows[2].as_ptr().add(kb));
        let r3 = _mm256_loadu_ps(rows[3].as_ptr().add(kb));
        let r4 = _mm256_loadu_ps(rows[4].as_ptr().add(kb));
        let r5 = _mm256_loadu_ps(rows[5].as_ptr().add(kb));
        let r6 = _mm256_loadu_ps(rows[6].as_ptr().add(kb));
        let r7 = _mm256_loadu_ps(rows[7].as_ptr().add(kb));
        let t0 = _mm256_unpacklo_ps(r0, r1);
        let t1 = _mm256_unpackhi_ps(r0, r1);
        let t2 = _mm256_unpacklo_ps(r2, r3);
        let t3 = _mm256_unpackhi_ps(r2, r3);
        let t4 = _mm256_unpacklo_ps(r4, r5);
        let t5 = _mm256_unpackhi_ps(r4, r5);
        let t6 = _mm256_unpacklo_ps(r6, r7);
        let t7 = _mm256_unpackhi_ps(r6, r7);
        let s0 = _mm256_shuffle_ps(t0, t2, 0x44);
        let s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
        let s2 = _mm256_shuffle_ps(t1, t3, 0x44);
        let s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
        let s4 = _mm256_shuffle_ps(t4, t6, 0x44);
        let s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
        let s6 = _mm256_shuffle_ps(t5, t7, 0x44);
        let s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
        [
            _mm256_permute2f128_ps(s0, s4, 0x20),
            _mm256_permute2f128_ps(s1, s5, 0x20),
            _mm256_permute2f128_ps(s2, s6, 0x20),
            _mm256_permute2f128_ps(s3, s7, 0x20),
            _mm256_permute2f128_ps(s0, s4, 0x31),
            _mm256_permute2f128_ps(s1, s5, 0x31),
            _mm256_permute2f128_ps(s2, s6, 0x31),
            _mm256_permute2f128_ps(s3, s7, 0x31),
        ]
    }

    /// 4×4 transpose of 4 rows at column `kb`: `c[t]` lane `u` =
    /// `rows[u][kb + t]`.
    ///
    /// # Safety
    ///
    /// Requires SSE2; every `rows[u]` must have at least `kb + 4` elements.
    #[inline]
    #[target_feature(enable = "sse2")]
    // SAFETY: the caller guarantees SSE2, `rows.len() >= 4`, and
    // `kb + 4 <= rows[u].len()`, so each unaligned `loadu` reads 4
    // in-bounds floats; everything after the loads is register-only.
    unsafe fn transpose_4x4(rows: &[&[f32]], kb: usize) -> [__m128; 4] {
        let r0 = _mm_loadu_ps(rows[0].as_ptr().add(kb));
        let r1 = _mm_loadu_ps(rows[1].as_ptr().add(kb));
        let r2 = _mm_loadu_ps(rows[2].as_ptr().add(kb));
        let r3 = _mm_loadu_ps(rows[3].as_ptr().add(kb));
        let t0 = _mm_unpacklo_ps(r0, r1); // r0[0] r1[0] r0[1] r1[1]
        let t1 = _mm_unpacklo_ps(r2, r3);
        let t2 = _mm_unpackhi_ps(r0, r1); // r0[2] r1[2] r0[3] r1[3]
        let t3 = _mm_unpackhi_ps(r2, r3);
        [
            _mm_movelh_ps(t0, t1),
            _mm_movehl_ps(t1, t0),
            _mm_movelh_ps(t2, t3),
            _mm_movehl_ps(t3, t2),
        ]
    }

    /// AVX2 form of `nt_micro_1xu`: 8 column accumulators, one per lane,
    /// each advancing in ascending-k order.
    ///
    /// # Safety
    ///
    /// Requires AVX2; every `rows[u]` must have at least `a_row.len()`
    /// elements.
    #[target_feature(enable = "avx,avx2")]
    // SAFETY: the caller guarantees AVX2 and `rows[u].len() >= k`. The
    // vector loop only runs while `kb + 8 <= k`, so `transpose_8x8(rows,
    // kb)` reads in-bounds and `a_row.get_unchecked(kb + t)` (t < 8) stays
    // below `k = a_row.len()`. `acc` is `&mut [f32; 8]`: exactly one
    // unaligned 8-lane load and store.
    pub unsafe fn nt_micro_1x8_avx2(a_row: &[f32], rows: &[&[f32]; 8], acc: &mut [f32; 8]) {
        let k = a_row.len();
        let mut va = _mm256_loadu_ps(acc.as_ptr());
        let mut kb = 0usize;
        while kb + 8 <= k {
            let c = transpose_8x8(rows, kb);
            for (t, ct) in c.iter().enumerate() {
                let av = _mm256_set1_ps(*a_row.get_unchecked(kb + t));
                va = _mm256_add_ps(va, _mm256_mul_ps(av, *ct));
            }
            kb += 8;
        }
        _mm256_storeu_ps(acc.as_mut_ptr(), va);
        // k-tail: continue each lane's chain scalar, same order.
        for kk in kb..k {
            let av = a_row[kk];
            for (u, slot) in acc.iter_mut().enumerate() {
                *slot += av * rows[u][kk];
            }
        }
    }

    /// AVX2 form of `nt_micro_2xu`: two a-rows share each transposed
    /// column block.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `a0.len() == a1.len()` and every `rows[u]` must have
    /// at least `a0.len()` elements.
    #[target_feature(enable = "avx,avx2")]
    // SAFETY: the caller guarantees AVX2, `a0.len() == a1.len()`, and
    // `rows[u].len() >= k`. `kb + 8 <= k` bounds both
    // `get_unchecked(kb + t)` reads (t < 8) and the `transpose_8x8` loads;
    // `acc0`/`acc1` are `&mut [f32; 8]`, so the unaligned 8-lane
    // loads/stores cover exactly their extent.
    pub unsafe fn nt_micro_2x8_avx2(
        a0: &[f32],
        a1: &[f32],
        rows: &[&[f32]; 8],
        acc0: &mut [f32; 8],
        acc1: &mut [f32; 8],
    ) {
        let k = a0.len();
        let mut v0 = _mm256_loadu_ps(acc0.as_ptr());
        let mut v1 = _mm256_loadu_ps(acc1.as_ptr());
        let mut kb = 0usize;
        while kb + 8 <= k {
            let c = transpose_8x8(rows, kb);
            for (t, ct) in c.iter().enumerate() {
                let av0 = _mm256_set1_ps(*a0.get_unchecked(kb + t));
                let av1 = _mm256_set1_ps(*a1.get_unchecked(kb + t));
                v0 = _mm256_add_ps(v0, _mm256_mul_ps(av0, *ct));
                v1 = _mm256_add_ps(v1, _mm256_mul_ps(av1, *ct));
            }
            kb += 8;
        }
        _mm256_storeu_ps(acc0.as_mut_ptr(), v0);
        _mm256_storeu_ps(acc1.as_mut_ptr(), v1);
        for kk in kb..k {
            let (av0, av1) = (a0[kk], a1[kk]);
            for u in 0..8 {
                let bv = rows[u][kk];
                acc0[u] += av0 * bv;
                acc1[u] += av1 * bv;
            }
        }
    }

    /// SSE2 form of `nt_micro_1xu`: the 8 column accumulators as two
    /// 4-lane halves.
    ///
    /// # Safety
    ///
    /// Requires SSE2; every `rows[u]` must have at least `a_row.len()`
    /// elements.
    #[target_feature(enable = "sse2")]
    // SAFETY: the caller guarantees SSE2 and `rows[u].len() >= k`. The
    // loop condition `kb + 4 <= k` bounds the `transpose_4x4` loads and
    // `a_row.get_unchecked(kb + t)` (t < 4); `acc` is `&mut [f32; 8]`, so
    // the two half loads/stores at offsets 0 and 4 are in-bounds.
    pub unsafe fn nt_micro_1x8_sse2(a_row: &[f32], rows: &[&[f32]; 8], acc: &mut [f32; 8]) {
        let k = a_row.len();
        let mut lo = _mm_loadu_ps(acc.as_ptr());
        let mut hi = _mm_loadu_ps(acc.as_ptr().add(4));
        let mut kb = 0usize;
        while kb + 4 <= k {
            let clo = transpose_4x4(&rows[..4], kb);
            let chi = transpose_4x4(&rows[4..], kb);
            for t in 0..4 {
                let av = _mm_set1_ps(*a_row.get_unchecked(kb + t));
                lo = _mm_add_ps(lo, _mm_mul_ps(av, clo[t]));
                hi = _mm_add_ps(hi, _mm_mul_ps(av, chi[t]));
            }
            kb += 4;
        }
        _mm_storeu_ps(acc.as_mut_ptr(), lo);
        _mm_storeu_ps(acc.as_mut_ptr().add(4), hi);
        for kk in kb..k {
            let av = a_row[kk];
            for (u, slot) in acc.iter_mut().enumerate() {
                *slot += av * rows[u][kk];
            }
        }
    }

    /// SSE2 form of `nt_micro_2xu`.
    ///
    /// # Safety
    ///
    /// Requires SSE2; `a0.len() == a1.len()` and every `rows[u]` must have
    /// at least `a0.len()` elements.
    #[target_feature(enable = "sse2")]
    // SAFETY: the caller guarantees SSE2, `a0.len() == a1.len()`, and
    // `rows[u].len() >= k`. `kb + 4 <= k` bounds the `transpose_4x4`
    // loads and both `get_unchecked(kb + t)` reads (t < 4); the four
    // half loads/stores cover exactly the `[f32; 8]` accumulators.
    pub unsafe fn nt_micro_2x8_sse2(
        a0: &[f32],
        a1: &[f32],
        rows: &[&[f32]; 8],
        acc0: &mut [f32; 8],
        acc1: &mut [f32; 8],
    ) {
        let k = a0.len();
        let mut v0lo = _mm_loadu_ps(acc0.as_ptr());
        let mut v0hi = _mm_loadu_ps(acc0.as_ptr().add(4));
        let mut v1lo = _mm_loadu_ps(acc1.as_ptr());
        let mut v1hi = _mm_loadu_ps(acc1.as_ptr().add(4));
        let mut kb = 0usize;
        while kb + 4 <= k {
            let clo = transpose_4x4(&rows[..4], kb);
            let chi = transpose_4x4(&rows[4..], kb);
            for t in 0..4 {
                let av0 = _mm_set1_ps(*a0.get_unchecked(kb + t));
                let av1 = _mm_set1_ps(*a1.get_unchecked(kb + t));
                v0lo = _mm_add_ps(v0lo, _mm_mul_ps(av0, clo[t]));
                v0hi = _mm_add_ps(v0hi, _mm_mul_ps(av0, chi[t]));
                v1lo = _mm_add_ps(v1lo, _mm_mul_ps(av1, clo[t]));
                v1hi = _mm_add_ps(v1hi, _mm_mul_ps(av1, chi[t]));
            }
            kb += 4;
        }
        _mm_storeu_ps(acc0.as_mut_ptr(), v0lo);
        _mm_storeu_ps(acc0.as_mut_ptr().add(4), v0hi);
        _mm_storeu_ps(acc1.as_mut_ptr(), v1lo);
        _mm_storeu_ps(acc1.as_mut_ptr().add(4), v1hi);
        for kk in kb..k {
            let (av0, av1) = (a0[kk], a1[kk]);
            for u in 0..8 {
                let bv = rows[u][kk];
                acc0[u] += av0 * bv;
                acc1[u] += av1 * bv;
            }
        }
    }

    /// AVX2 `out[j] += a · x[j]` over `out.len()` elements — the axpy of
    /// the nn GEMM inner loop and the AV remainder. One mul + one add per
    /// element, identical to the scalar chain.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `x` must have at least `out.len()` elements.
    #[target_feature(enable = "avx,avx2")]
    // SAFETY: the caller guarantees AVX2 and `x.len() >= out.len()`. The
    // vector loop runs only while `j + 8 <= out.len()`, so the unaligned
    // loads from `x` and `out` and the store to `out` at offset `j` all
    // cover in-bounds 8-float windows; the tail is safe indexing.
    pub unsafe fn axpy_avx2(a: f32, x: &[f32], out: &mut [f32]) {
        let n = out.len();
        let va = _mm256_set1_ps(a);
        let mut j = 0usize;
        while j + 8 <= n {
            let vo = _mm256_loadu_ps(out.as_ptr().add(j));
            let vx = _mm256_loadu_ps(x.as_ptr().add(j));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(j),
                _mm256_add_ps(vo, _mm256_mul_ps(va, vx)),
            );
            j += 8;
        }
        for jj in j..n {
            out[jj] += a * x[jj];
        }
    }

    /// SSE2 axpy (see [`axpy_avx2`]).
    ///
    /// # Safety
    ///
    /// Requires SSE2; `x` must have at least `out.len()` elements.
    #[target_feature(enable = "sse2")]
    // SAFETY: the caller guarantees SSE2 and `x.len() >= out.len()`;
    // `j + 4 <= out.len()` bounds every unaligned 4-float load and store
    // at offset `j`, and the tail is safe indexing.
    pub unsafe fn axpy_sse2(a: f32, x: &[f32], out: &mut [f32]) {
        let n = out.len();
        let va = _mm_set1_ps(a);
        let mut j = 0usize;
        while j + 4 <= n {
            let vo = _mm_loadu_ps(out.as_ptr().add(j));
            let vx = _mm_loadu_ps(x.as_ptr().add(j));
            _mm_storeu_ps(out.as_mut_ptr().add(j), _mm_add_ps(vo, _mm_mul_ps(va, vx)));
            j += 4;
        }
        for jj in j..n {
            out[jj] += a * x[jj];
        }
    }

    /// AVX2 form of the 4-row weighted-rows block:
    /// `out[j] += Σ_u wv[u] · sel[u][j]`, u ascending per element —
    /// identical to the scalar register-carried block.
    ///
    /// # Safety
    ///
    /// Requires AVX2; every `sel[u]` must have at least `out.len()`
    /// elements.
    #[target_feature(enable = "avx,avx2")]
    // SAFETY: the caller guarantees AVX2 and `sel[u].len() >= out.len()`
    // for all four `u`. `j + 8 <= out.len()` bounds the unaligned loads
    // from `out` and each `sel[u]` and the store to `out` at offset `j`;
    // the tail is safe indexing.
    pub unsafe fn wr_block_avx2(wv: &[f32; 4], sel: &[&[f32]; 4], out: &mut [f32]) {
        let n = out.len();
        let w0 = _mm256_set1_ps(wv[0]);
        let w1 = _mm256_set1_ps(wv[1]);
        let w2 = _mm256_set1_ps(wv[2]);
        let w3 = _mm256_set1_ps(wv[3]);
        let mut j = 0usize;
        while j + 8 <= n {
            let mut vo = _mm256_loadu_ps(out.as_ptr().add(j));
            vo = _mm256_add_ps(
                vo,
                _mm256_mul_ps(w0, _mm256_loadu_ps(sel[0].as_ptr().add(j))),
            );
            vo = _mm256_add_ps(
                vo,
                _mm256_mul_ps(w1, _mm256_loadu_ps(sel[1].as_ptr().add(j))),
            );
            vo = _mm256_add_ps(
                vo,
                _mm256_mul_ps(w2, _mm256_loadu_ps(sel[2].as_ptr().add(j))),
            );
            vo = _mm256_add_ps(
                vo,
                _mm256_mul_ps(w3, _mm256_loadu_ps(sel[3].as_ptr().add(j))),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(j), vo);
            j += 8;
        }
        for jj in j..n {
            let mut acc = out[jj];
            for u in 0..4 {
                acc += wv[u] * sel[u][jj];
            }
            out[jj] = acc;
        }
    }

    /// SSE2 form of the 4-row weighted-rows block (see [`wr_block_avx2`]).
    ///
    /// # Safety
    ///
    /// Requires SSE2; every `sel[u]` must have at least `out.len()`
    /// elements.
    #[target_feature(enable = "sse2")]
    // SAFETY: the caller guarantees SSE2 and `sel[u].len() >= out.len()`
    // for all four `u`; `j + 4 <= out.len()` bounds every unaligned load
    // and store at offset `j`, and the tail is safe indexing.
    pub unsafe fn wr_block_sse2(wv: &[f32; 4], sel: &[&[f32]; 4], out: &mut [f32]) {
        let n = out.len();
        let w0 = _mm_set1_ps(wv[0]);
        let w1 = _mm_set1_ps(wv[1]);
        let w2 = _mm_set1_ps(wv[2]);
        let w3 = _mm_set1_ps(wv[3]);
        let mut j = 0usize;
        while j + 4 <= n {
            let mut vo = _mm_loadu_ps(out.as_ptr().add(j));
            vo = _mm_add_ps(vo, _mm_mul_ps(w0, _mm_loadu_ps(sel[0].as_ptr().add(j))));
            vo = _mm_add_ps(vo, _mm_mul_ps(w1, _mm_loadu_ps(sel[1].as_ptr().add(j))));
            vo = _mm_add_ps(vo, _mm_mul_ps(w2, _mm_loadu_ps(sel[2].as_ptr().add(j))));
            vo = _mm_add_ps(vo, _mm_mul_ps(w3, _mm_loadu_ps(sel[3].as_ptr().add(j))));
            _mm_storeu_ps(out.as_mut_ptr().add(j), vo);
            j += 4;
        }
        for jj in j..n {
            let mut acc = out[jj];
            for u in 0..4 {
                acc += wv[u] * sel[u][jj];
            }
            out[jj] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Sse2.name(), "sse2");
        assert_eq!(KernelBackend::Avx2.name(), "avx2");
        assert_eq!(format!("{}", KernelBackend::Avx2), "avx2");
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(KernelBackend::Scalar.is_available());
        assert!(detected_backend() >= KernelBackend::Scalar);
    }

    #[test]
    fn cpu_features_is_nonempty() {
        assert!(!cpu_features().is_empty());
    }

    #[test]
    fn backend_guard_restores_previous_override() {
        // Scalar is always forceable; the guard must restore the prior
        // state on drop (other tests may race the global, but all
        // backends are bit-identical so only this test's own window is
        // asserted).
        {
            let _g = BackendGuard::force(KernelBackend::Scalar);
            assert_eq!(active_backend(), KernelBackend::Scalar);
        }
        let best = detected_backend();
        let _g = BackendGuard::force(best);
        assert_eq!(active_backend(), best);
    }

    #[test]
    #[should_panic(expected = "unavailable")]
    fn forcing_an_unavailable_backend_panics() {
        if detected_backend() == KernelBackend::Avx2 {
            // Everything is available on this machine; synthesize the
            // panic so the test holds everywhere.
            panic!("kernel backend avx2 unavailable (detected: avx2) [synthetic]");
        }
        force_backend(Some(KernelBackend::Avx2));
    }
}
