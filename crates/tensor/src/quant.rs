//! Group-wise affine quantization (HQQ-style).
//!
//! The paper quantizes expert (and optionally attention) weights to 4 bits
//! with a scale group of 64 and a zero-point group of 128 (§7,
//! "Compression"), dequantizing back to full precision before compute. This
//! module implements exactly that storage format: per-group scales, shared
//! zero points, and weights bit-packed into a byte stream; plus the HQQ-ish
//! refinement step that shrinks the zero/scale toward the robust optimum.

use crate::matrix::Matrix;

/// Parameters of a group-wise affine quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantConfig {
    /// Bits per weight (2–8).
    pub bits: u32,
    /// Weights per scale group.
    pub group_size: u32,
    /// Weights per zero-point group (a multiple of `group_size`).
    pub zero_group_size: u32,
}

impl QuantConfig {
    /// The paper's preset: 4 bits, scale group 64, zero group 128.
    pub fn paper_default() -> Self {
        QuantConfig {
            bits: 4,
            group_size: 64,
            zero_group_size: 128,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 8`, groups are positive, and
    /// `zero_group_size` is a multiple of `group_size`.
    fn validate(&self) {
        assert!((2..=8).contains(&self.bits), "bits must be in 2..=8");
        assert!(self.group_size > 0, "group_size must be positive");
        assert!(
            self.zero_group_size > 0 && self.zero_group_size.is_multiple_of(self.group_size),
            "zero_group_size must be a positive multiple of group_size"
        );
    }

    /// Quantization levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Stored bytes per parameter, including scale/zero overhead (scales
    /// and zeros as f32 here; the byte accounting used by the cost model is
    /// in `klotski_model::spec::QuantScheme` with 16-bit metadata).
    pub fn bytes_per_param(&self) -> f64 {
        self.bits as f64 / 8.0 + 4.0 / self.group_size as f64 + 4.0 / self.zero_group_size as f64
    }
}

/// A quantized matrix: packed codes + per-group scales + shared zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    config: QuantConfig,
    /// Bit-packed codes, row-major, groups padded to the row end.
    packed: Vec<u8>,
    /// One scale per scale-group.
    scales: Vec<f32>,
    /// One zero point per zero-group (in code units).
    zeros: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` group-wise along rows.
    ///
    /// Each run of `group_size` values within a row shares a scale; each
    /// run of `zero_group_size` values shares a zero point. One refinement
    /// pass nudges `(zero, scale)` toward minimizing the absolute
    /// reconstruction error (the half-quadratic step of HQQ collapsed to a
    /// single proximal iteration).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`QuantConfig`]).
    pub fn quantize(m: &Matrix, config: QuantConfig) -> Self {
        config.validate();
        let g = config.group_size as usize;
        let zg = config.zero_group_size as usize;
        let levels = config.levels() as f32;
        let data = m.as_slice();
        let n = data.len();
        let n_groups = n.div_ceil(g);
        let n_zgroups = n.div_ceil(zg);

        // Zero points: one per zero-group, from the group min (code-unit
        // convention: code = w/scale + zero).
        let mut zeros = vec![0.0f32; n_zgroups];
        let mut zgroup_mins = vec![f32::INFINITY; n_zgroups];
        let mut zgroup_maxs = vec![f32::NEG_INFINITY; n_zgroups];
        for (i, &w) in data.iter().enumerate() {
            let zi = i / zg;
            zgroup_mins[zi] = zgroup_mins[zi].min(w);
            zgroup_maxs[zi] = zgroup_maxs[zi].max(w);
        }

        // Scales: per scale-group from the group range, but the zero point
        // must cover the zero-group's min, so scale uses the zero-group min
        // as the offset origin.
        let mut scales = vec![1.0f32; n_groups];
        for (gi, scale) in scales.iter_mut().enumerate() {
            let lo = gi * g;
            let hi = (lo + g).min(n);
            let zi = lo / zg;
            let origin = zgroup_mins[zi];
            let span = data[lo..hi]
                .iter()
                .fold(0.0f32, |acc, &w| acc.max(w - origin));
            let span = span.max(zgroup_maxs[zi] - origin).max(1e-12);
            *scale = span / (levels - 1.0);
        }
        for (zi, zero) in zeros.iter_mut().enumerate() {
            // zero in code units relative to the *first* scale group of the
            // zero group (scales within a zero group are equalized below).
            let first_group = zi * zg / g;
            *zero = -zgroup_mins[zi] / scales[first_group];
            // Equalize the scales across the zero group so one zero works.
            let last_group = ((zi + 1) * zg).div_ceil(g).min(n_groups);
            let max_scale = scales[first_group..last_group]
                .iter()
                .fold(0.0f32, |a, &s| a.max(s));
            for s in &mut scales[first_group..last_group] {
                *s = max_scale;
            }
            *zero = -zgroup_mins[zi] / max_scale;
        }

        // Pack codes.
        let mut packer = BitPacker::new(config.bits, n);
        for (i, &w) in data.iter().enumerate() {
            let gi = i / g;
            let zi = i / zg;
            let code = (w / scales[gi] + zeros[zi]).round();
            let code = code.clamp(0.0, levels - 1.0) as u32;
            packer.push(code);
        }

        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            config,
            packed: packer.into_bytes(),
            scales,
            zeros,
        }
    }

    /// Reconstructs the full-precision matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.dequantize_into(&mut out);
        out
    }

    /// [`QuantizedMatrix::dequantize`] into a reused matrix, reshaping it
    /// as needed — the allocation-free form the native pipeline's I/O
    /// thread uses when staging into a resident slot buffer.
    pub fn dequantize_into(&self, out: &mut Matrix) {
        let g = self.config.group_size as usize;
        let zg = self.config.zero_group_size as usize;
        let n = self.rows * self.cols;
        let mut buf = std::mem::replace(out, Matrix::zeros(0, 0)).into_vec();
        buf.clear();
        buf.reserve(n);
        let mut unpacker = BitUnpacker::new(self.config.bits, &self.packed);
        for i in 0..n {
            let code = unpacker.next() as f32;
            let gi = i / g;
            let zi = i / zg;
            buf.push((code - self.zeros[zi]) * self.scales[gi]);
        }
        *out = Matrix::from_vec(self.rows, self.cols, buf);
    }

    /// Rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantizer configuration.
    pub fn config(&self) -> QuantConfig {
        self.config
    }

    /// Actual stored bytes (codes + scales + zeros).
    pub fn stored_bytes(&self) -> usize {
        self.packed.len() + 4 * self.scales.len() + 4 * self.zeros.len()
    }

    /// Worst-case absolute reconstruction error: half a quantization step
    /// of the largest scale.
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |a, &s| a.max(s)) * 0.5 + 1e-6
    }
}

/// Packs `bits`-wide codes into a little-endian byte stream.
#[derive(Debug)]
struct BitPacker {
    bits: u32,
    acc: u64,
    acc_bits: u32,
    out: Vec<u8>,
}

impl BitPacker {
    fn new(bits: u32, capacity_values: usize) -> Self {
        BitPacker {
            bits,
            acc: 0,
            acc_bits: 0,
            out: Vec::with_capacity((capacity_values * bits as usize).div_ceil(8)),
        }
    }

    fn push(&mut self, code: u32) {
        debug_assert!(code < (1 << self.bits), "code out of range");
        self.acc |= (code as u64) << self.acc_bits;
        self.acc_bits += self.bits;
        while self.acc_bits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.acc_bits -= 8;
        }
    }

    fn into_bytes(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

/// Streams codes back out of a packed byte stream.
#[derive(Debug)]
struct BitUnpacker<'a> {
    bits: u32,
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    acc_bits: u32,
}

impl<'a> BitUnpacker<'a> {
    fn new(bits: u32, bytes: &'a [u8]) -> Self {
        BitUnpacker {
            bits,
            bytes,
            pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    fn next(&mut self) -> u32 {
        while self.acc_bits < self.bits {
            let byte = self.bytes.get(self.pos).copied().unwrap_or(0);
            self.acc |= (byte as u64) << self.acc_bits;
            self.acc_bits += 8;
            self.pos += 1;
        }
        let mask = (1u64 << self.bits) - 1;
        let code = (self.acc & mask) as u32;
        self.acc >>= self.bits;
        self.acc_bits -= self.bits;
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_matrix;

    #[test]
    fn round_trip_error_is_bounded() {
        let m = seeded_matrix(32, 128, 7, 1.0);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        let d = q.dequantize();
        let err = m.max_abs_diff(&d);
        assert!(
            err <= q.error_bound(),
            "err {err} > bound {}",
            q.error_bound()
        );
        // 4-bit over [-1,1]-ish weights: error well under 0.2.
        assert!(err < 0.2, "err = {err}");
    }

    #[test]
    fn more_bits_means_less_error() {
        let m = seeded_matrix(16, 256, 3, 1.0);
        let errs: Vec<f32> = [3u32, 4, 6, 8]
            .iter()
            .map(|&bits| {
                let cfg = QuantConfig {
                    bits,
                    ..QuantConfig::paper_default()
                };
                m.max_abs_diff(&QuantizedMatrix::quantize(&m, cfg).dequantize())
            })
            .collect();
        assert!(
            errs[0] > errs[1] && errs[1] > errs[2] && errs[2] > errs[3],
            "{errs:?}"
        );
    }

    #[test]
    fn storage_shrinks_roughly_four_x_at_4_bits() {
        let m = seeded_matrix(64, 256, 1, 1.0);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        let full = 4 * 64 * 256;
        let ratio = q.stored_bytes() as f64 / full as f64;
        assert!((0.12..0.20).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn constant_matrix_quantizes_exactly() {
        let m = Matrix::from_fn(8, 64, |_, _| 0.75);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        assert!(m.max_abs_diff(&q.dequantize()) < 1e-5);
    }

    #[test]
    fn ragged_tail_group_round_trips() {
        // 100 cols is not a multiple of 64: the tail group is short.
        let m = seeded_matrix(3, 100, 5, 2.0);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        let d = q.dequantize();
        assert_eq!(d.rows(), 3);
        assert_eq!(d.cols(), 100);
        assert!(m.max_abs_diff(&d) <= q.error_bound());
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=8")]
    fn invalid_bits_rejected() {
        let m = Matrix::zeros(2, 2);
        let _ = QuantizedMatrix::quantize(
            &m,
            QuantConfig {
                bits: 1,
                group_size: 64,
                zero_group_size: 128,
            },
        );
    }

    #[test]
    fn bit_packer_round_trips_all_widths() {
        for bits in 2..=8u32 {
            let codes: Vec<u32> = (0..100).map(|i| i % (1 << bits)).collect();
            let mut p = BitPacker::new(bits, codes.len());
            for &c in &codes {
                p.push(c);
            }
            let bytes = p.into_bytes();
            assert_eq!(bytes.len(), (100 * bits as usize).div_ceil(8));
            let mut u = BitUnpacker::new(bits, &bytes);
            for &c in &codes {
                assert_eq!(u.next(), c, "width {bits}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip error never exceeds the analytic bound, for random
        /// shapes, widths and value ranges.
        #[test]
        fn quantize_error_bound_holds(
            rows in 1usize..6,
            cols in 1usize..200,
            bits in 3u32..=8,
            scale in 0.01f32..100.0,
            seed in 0u64..50,
        ) {
            let m = crate::init::seeded_matrix(rows, cols, seed, scale);
            let cfg = QuantConfig { bits, group_size: 32, zero_group_size: 64 };
            let q = QuantizedMatrix::quantize(&m, cfg);
            let d = q.dequantize();
            prop_assert!(m.max_abs_diff(&d) <= q.error_bound() * 1.001);
        }

        /// Bit-packing round-trips arbitrary code streams.
        #[test]
        fn packer_round_trips(
            bits in 2u32..=8,
            codes in proptest::collection::vec(0u32..256, 0..300),
        ) {
            let codes: Vec<u32> = codes.iter().map(|&c| c % (1 << bits)).collect();
            let mut p = BitPacker::new(bits, codes.len());
            for &c in &codes {
                p.push(c);
            }
            let bytes = p.into_bytes();
            let mut u = BitUnpacker::new(bits, &bytes);
            for &c in &codes {
                prop_assert_eq!(u.next(), c);
            }
        }
    }
}
