//! Group-wise affine quantization (HQQ-style).
//!
//! The paper quantizes expert (and optionally attention) weights to 4 bits
//! with a scale group of 64 and a zero-point group of 128 (§7,
//! "Compression"), dequantizing back to full precision before compute. This
//! module implements exactly that storage format: per-group scales, shared
//! zero points, and weights bit-packed into a byte stream; plus the HQQ-ish
//! refinement step that shrinks the zero/scale toward the robust optimum.
//!
//! Two compute paths read the packed stream:
//!
//! * [`QuantizedMatrix::dequantize_into`] reconstructs full precision a
//!   scale group at a time (zero/scale hoisted, bytes decoded in bulk);
//! * [`QuantizedMatrix::matmul_nt_fused_into`] fuses that dequantization
//!   into the `A · selfᵀ` GEMM — a 64-code panel of each weight row is
//!   unpacked into a stack buffer and fed straight to the register
//!   micro-kernels, so expert compute runs off the packed bytes with no
//!   full-precision staging matrix. Both are **bit-identical** to
//!   dequantize-then-GEMM: the dequant expression and every per-element
//!   accumulation chain are unchanged (`f32` accumulators spill/reload
//!   exactly across panels).

use crate::matrix::{Matrix, NT_COLS};
use crate::simd::{active_backend, KernelBackend};

/// Parameters of a group-wise affine quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantConfig {
    /// Bits per weight (2–8).
    pub bits: u32,
    /// Weights per scale group.
    pub group_size: u32,
    /// Weights per zero-point group (a multiple of `group_size`).
    pub zero_group_size: u32,
}

impl QuantConfig {
    /// The paper's preset: 4 bits, scale group 64, zero group 128.
    pub fn paper_default() -> Self {
        QuantConfig {
            bits: 4,
            group_size: 64,
            zero_group_size: 128,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 8`, groups are positive, and
    /// `zero_group_size` is a multiple of `group_size`.
    fn validate(&self) {
        assert!((2..=8).contains(&self.bits), "bits must be in 2..=8");
        assert!(self.group_size > 0, "group_size must be positive");
        assert!(
            self.zero_group_size > 0 && self.zero_group_size.is_multiple_of(self.group_size),
            "zero_group_size must be a positive multiple of group_size"
        );
    }

    /// Quantization levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Stored bytes per parameter, including scale/zero overhead (scales
    /// and zeros as f32 here; the byte accounting used by the cost model is
    /// in `klotski_model::spec::QuantScheme` with 16-bit metadata).
    pub fn bytes_per_param(&self) -> f64 {
        self.bits as f64 / 8.0 + 4.0 / self.group_size as f64 + 4.0 / self.zero_group_size as f64
    }
}

/// A quantized matrix: packed codes + per-group scales + shared zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    config: QuantConfig,
    /// Bit-packed codes, row-major, groups padded to the row end.
    packed: Vec<u8>,
    /// One scale per scale-group.
    scales: Vec<f32>,
    /// One zero point per zero-group (in code units).
    zeros: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` group-wise along rows.
    ///
    /// Each run of `group_size` values within a row shares a scale; each
    /// run of `zero_group_size` values shares a zero point. One refinement
    /// pass nudges `(zero, scale)` toward minimizing the absolute
    /// reconstruction error (the half-quadratic step of HQQ collapsed to a
    /// single proximal iteration).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`QuantConfig`]).
    pub fn quantize(m: &Matrix, config: QuantConfig) -> Self {
        config.validate();
        let g = config.group_size as usize;
        let zg = config.zero_group_size as usize;
        let levels = config.levels() as f32;
        let data = m.as_slice();
        let n = data.len();
        let n_groups = n.div_ceil(g);
        let n_zgroups = n.div_ceil(zg);

        // Zero points: one per zero-group, from the group min (code-unit
        // convention: code = w/scale + zero).
        let mut zeros = vec![0.0f32; n_zgroups];
        let mut zgroup_mins = vec![f32::INFINITY; n_zgroups];
        let mut zgroup_maxs = vec![f32::NEG_INFINITY; n_zgroups];
        for (i, &w) in data.iter().enumerate() {
            let zi = i / zg;
            zgroup_mins[zi] = zgroup_mins[zi].min(w);
            zgroup_maxs[zi] = zgroup_maxs[zi].max(w);
        }

        // Scales: per scale-group from the group range, but the zero point
        // must cover the zero-group's min, so scale uses the zero-group min
        // as the offset origin.
        let mut scales = vec![1.0f32; n_groups];
        for (gi, scale) in scales.iter_mut().enumerate() {
            let lo = gi * g;
            let hi = (lo + g).min(n);
            let zi = lo / zg;
            let origin = zgroup_mins[zi];
            let span = data[lo..hi]
                .iter()
                .fold(0.0f32, |acc, &w| acc.max(w - origin));
            let span = span.max(zgroup_maxs[zi] - origin).max(1e-12);
            *scale = span / (levels - 1.0);
        }
        for (zi, zero) in zeros.iter_mut().enumerate() {
            // zero in code units relative to the *first* scale group of the
            // zero group (scales within a zero group are equalized below).
            let first_group = zi * zg / g;
            *zero = -zgroup_mins[zi] / scales[first_group];
            // Equalize the scales across the zero group so one zero works.
            let last_group = ((zi + 1) * zg).div_ceil(g).min(n_groups);
            let max_scale = scales[first_group..last_group]
                .iter()
                .fold(0.0f32, |a, &s| a.max(s));
            for s in &mut scales[first_group..last_group] {
                *s = max_scale;
            }
            *zero = -zgroup_mins[zi] / max_scale;
        }

        // Pack codes.
        let mut packer = BitPacker::new(config.bits, n);
        for (i, &w) in data.iter().enumerate() {
            let gi = i / g;
            let zi = i / zg;
            let code = (w / scales[gi] + zeros[zi]).round();
            let code = code.clamp(0.0, levels - 1.0) as u32;
            packer.push(code);
        }

        QuantizedMatrix {
            rows: m.rows(),
            cols: m.cols(),
            config,
            packed: packer.into_bytes(),
            scales,
            zeros,
        }
    }

    /// Reconstructs the full-precision matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.dequantize_into(&mut out);
        out
    }

    /// [`QuantizedMatrix::dequantize`] into a reused matrix, reshaping it
    /// as needed — the allocation-free form the native pipeline's I/O
    /// thread uses when staging into a resident slot buffer.
    ///
    /// Decodes a scale group at a time: the group's zero and scale are
    /// hoisted out of the inner loop and the packed bytes are drained in
    /// bulk (64-bit refills), instead of two integer divisions and a
    /// bit-stream state-machine call per element. Bit-identical to
    /// [`QuantizedMatrix::dequantize_reference_into`], the retained
    /// per-element formulation.
    pub fn dequantize_into(&self, out: &mut Matrix) {
        let g = self.config.group_size as usize;
        let zg = self.config.zero_group_size as usize;
        let n = self.rows * self.cols;
        let mut buf = std::mem::replace(out, Matrix::zeros(0, 0)).into_vec();
        buf.clear();
        buf.resize(n, 0.0);
        let mut unpacker = BitUnpacker::new(self.config.bits, &self.packed);
        for (gi, &scale) in self.scales.iter().enumerate() {
            let lo = gi * g;
            let hi = (lo + g).min(n);
            // zero_group_size is a multiple of group_size, so one zero
            // covers the whole scale group.
            let zero = self.zeros[lo / zg];
            unpacker.dequant_span(zero, scale, &mut buf[lo..hi]);
        }
        *out = Matrix::from_vec(self.rows, self.cols, buf);
    }

    /// The original per-element dequantization loop (two index divisions
    /// and a bit-stream call per value), kept so tests and the micro bench
    /// can pin [`QuantizedMatrix::dequantize_into`] bit-identical to the
    /// definition.
    pub fn dequantize_reference_into(&self, out: &mut Matrix) {
        let g = self.config.group_size as usize;
        let zg = self.config.zero_group_size as usize;
        let n = self.rows * self.cols;
        let mut buf = std::mem::replace(out, Matrix::zeros(0, 0)).into_vec();
        buf.clear();
        buf.reserve(n);
        let mut unpacker = BitUnpacker::new(self.config.bits, &self.packed);
        for i in 0..n {
            let code = unpacker.next() as f32;
            let gi = i / g;
            let zi = i / zg;
            buf.push((code - self.zeros[zi]) * self.scales[gi]);
        }
        *out = Matrix::from_vec(self.rows, self.cols, buf);
    }

    /// Dequantizes columns `c0..c1` of weight row `row` into `out`
    /// (`out.len() == c1 - c0`), walking the scale-group segments the
    /// range crosses with zero/scale hoisted per segment. Groups are
    /// flat-indexed, so a range may straddle group boundaries when `cols`
    /// is not a multiple of the group size.
    fn unpack_dequant_row_range(&self, row: usize, c0: usize, c1: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), c1 - c0);
        let g = self.config.group_size as usize;
        let zg = self.config.zero_group_size as usize;
        let start = row * self.cols + c0;
        let end = row * self.cols + c1;
        let mut unpacker = BitUnpacker::at(self.config.bits, &self.packed, start);
        let mut i = start;
        let mut o = 0usize;
        while i < end {
            let gi = i / g;
            let seg_end = ((gi + 1) * g).min(end);
            let len = seg_end - i;
            unpacker.dequant_span(self.zeros[i / zg], self.scales[gi], &mut out[o..o + len]);
            i = seg_end;
            o += len;
        }
    }

    /// `out = a · selfᵀ` with dequantization fused into the GEMM: 64-code
    /// panels of each weight row are unpacked into a stack buffer and fed
    /// straight to the register micro-kernels — no full-precision staging
    /// matrix. **Bit-identical** to `a.matmul_nt(&self.dequantize())`:
    /// the dequant expression is unchanged and each output element is the
    /// same ascending-k chain (`f32` accumulators spill/reload exactly
    /// across panels).
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != self.cols()`, or `out` is not
    /// `a.rows() × self.rows()`.
    pub fn matmul_nt_fused_into(&self, a: &Matrix, out: &mut Matrix) {
        self.matmul_nt_fused_with_backend(a, out, active_backend());
    }

    /// [`QuantizedMatrix::matmul_nt_fused_into`] with the kernel backend
    /// pinned explicitly. Bit-identical at any backend.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    // analyze: no_alloc
    pub fn matmul_nt_fused_with_backend(
        &self,
        a: &Matrix,
        out: &mut Matrix,
        backend: KernelBackend,
    ) {
        assert_eq!(a.cols(), self.cols, "inner dimension mismatch");
        assert_eq!(out.rows(), a.rows(), "output rows mismatch");
        assert_eq!(out.cols(), self.rows, "output cols mismatch");
        /// Panel width in codes: one paper-default scale group, and a
        /// multiple of every vector width — 2 KiB of stack per 8-row block.
        const FUSED_PANEL: usize = 64;
        /// Input rows per pass. All per-row accumulator blocks live on the
        /// stack (64 × 8 × 4 B = 2 KiB), so the kernel performs no heap
        /// allocation — a whole decode group fits one pass; larger inputs
        /// pay the panel unpack once more per extra 64-row pass. Chunking
        /// rows changes nothing bit-wise: every output element's chain
        /// belongs to exactly one row.
        const FUSED_ROWS: usize = 64;
        let (k, n) = (self.cols, self.rows);
        let mut panels = [[0.0f32; FUSED_PANEL]; NT_COLS];
        let mut acc = [[0.0f32; NT_COLS]; FUSED_ROWS];
        let mut i_base = 0usize;
        while i_base < a.rows() {
            let m = (a.rows() - i_base).min(FUSED_ROWS);
            let mut j = 0usize;
            while j + NT_COLS <= n {
                for block in acc.iter_mut().take(m) {
                    *block = [0.0; NT_COLS];
                }
                let mut k0 = 0usize;
                while k0 < k {
                    let k1 = (k0 + FUSED_PANEL).min(k);
                    let plen = k1 - k0;
                    for (u, panel) in panels.iter_mut().enumerate() {
                        self.unpack_dequant_row_range(j + u, k0, k1, &mut panel[..plen]);
                    }
                    let rows: [&[f32]; NT_COLS] = std::array::from_fn(|u| &panels[u][..plen]);
                    let mut i = 0usize;
                    while i + 2 <= m {
                        let (lo, hi) = acc.split_at_mut(i + 1);
                        crate::matrix::nt_micro_2xu_b(
                            backend,
                            &a.row(i_base + i)[k0..k1],
                            &a.row(i_base + i + 1)[k0..k1],
                            &rows,
                            &mut lo[i],
                            &mut hi[0],
                        );
                        i += 2;
                    }
                    if i < m {
                        crate::matrix::nt_micro_1xu_b(
                            backend,
                            &a.row(i_base + i)[k0..k1],
                            &rows,
                            &mut acc[i],
                        );
                    }
                    k0 = k1;
                }
                for (i, block) in acc.iter().enumerate().take(m) {
                    out.row_mut(i_base + i)[j..j + NT_COLS].copy_from_slice(block);
                }
                j += NT_COLS;
            }
            // Weight-row tail (< NT_COLS rows left): one row at a time,
            // each output element a plain sequential chain across the same
            // panels.
            if j < n {
                let mut panel = [0.0f32; FUSED_PANEL];
                let mut tail_acc = [0.0f32; FUSED_ROWS];
                for jj in j..n {
                    tail_acc[..m].fill(0.0);
                    let mut k0 = 0usize;
                    while k0 < k {
                        let k1 = (k0 + FUSED_PANEL).min(k);
                        let plen = k1 - k0;
                        self.unpack_dequant_row_range(jj, k0, k1, &mut panel[..plen]);
                        for (i, t) in tail_acc.iter_mut().enumerate().take(m) {
                            let mut s = *t;
                            for (&x, &y) in a.row(i_base + i)[k0..k1].iter().zip(&panel[..plen]) {
                                s += x * y;
                            }
                            *t = s;
                        }
                        k0 = k1;
                    }
                    for (i, &t) in tail_acc.iter().enumerate().take(m) {
                        out.row_mut(i_base + i)[jj] = t;
                    }
                }
            }
            i_base += m;
        }
    }

    /// Becomes a copy of `src`, reusing the existing buffers when capacity
    /// allows — the packed-bytes analogue of [`Matrix::copy_from`], used
    /// when transferring a quantized expert into a resident slot.
    pub fn copy_from(&mut self, src: &QuantizedMatrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.config = src.config;
        self.packed.clear();
        self.packed.extend_from_slice(&src.packed);
        self.scales.clear();
        self.scales.extend_from_slice(&src.scales);
        self.zeros.clear();
        self.zeros.extend_from_slice(&src.zeros);
    }

    /// Rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantizer configuration.
    pub fn config(&self) -> QuantConfig {
        self.config
    }

    /// Actual stored bytes (codes + scales + zeros).
    pub fn stored_bytes(&self) -> usize {
        self.packed.len() + 4 * self.scales.len() + 4 * self.zeros.len()
    }

    /// Worst-case absolute reconstruction error: half a quantization step
    /// of the largest scale.
    pub fn error_bound(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |a, &s| a.max(s)) * 0.5 + 1e-6
    }
}

/// Packs `bits`-wide codes into a little-endian byte stream.
#[derive(Debug)]
struct BitPacker {
    bits: u32,
    acc: u64,
    acc_bits: u32,
    out: Vec<u8>,
}

impl BitPacker {
    fn new(bits: u32, capacity_values: usize) -> Self {
        BitPacker {
            bits,
            acc: 0,
            acc_bits: 0,
            out: Vec::with_capacity((capacity_values * bits as usize).div_ceil(8)),
        }
    }

    fn push(&mut self, code: u32) {
        debug_assert!(code < (1 << self.bits), "code out of range");
        self.acc |= (code as u64) << self.acc_bits;
        self.acc_bits += self.bits;
        while self.acc_bits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.acc_bits -= 8;
        }
    }

    fn into_bytes(mut self) -> Vec<u8> {
        if self.acc_bits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

/// Streams codes back out of a packed byte stream.
#[derive(Debug)]
struct BitUnpacker<'a> {
    bits: u32,
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    acc_bits: u32,
}

impl<'a> BitUnpacker<'a> {
    fn new(bits: u32, bytes: &'a [u8]) -> Self {
        BitUnpacker {
            bits,
            bytes,
            pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Seeks straight to `value_index` in the stream — random access for
    /// kernels that start mid-row. The accumulator is seeded from the
    /// containing byte with the leading bits shifted off, so subsequent
    /// reads are identical to having streamed from the start.
    fn at(bits: u32, bytes: &'a [u8], value_index: usize) -> Self {
        let bit_offset = value_index * bits as usize;
        let mut u = BitUnpacker {
            bits,
            bytes,
            pos: bit_offset / 8,
            acc: 0,
            acc_bits: 0,
        };
        let skip = (bit_offset % 8) as u32;
        if skip > 0 {
            let byte = u.bytes.get(u.pos).copied().unwrap_or(0);
            u.acc = (byte as u64) >> skip;
            u.acc_bits = 8 - skip;
            u.pos += 1;
        }
        u
    }

    fn next(&mut self) -> u32 {
        while self.acc_bits < self.bits {
            let byte = self.bytes.get(self.pos).copied().unwrap_or(0);
            self.acc |= (byte as u64) << self.acc_bits;
            self.acc_bits += 8;
            self.pos += 1;
        }
        let mask = (1u64 << self.bits) - 1;
        let code = (self.acc & mask) as u32;
        self.acc >>= self.bits;
        self.acc_bits -= self.bits;
        code
    }

    /// Decodes `out.len()` consecutive codes as `(code − zero) · scale` —
    /// the dequant expression with the group constants hoisted — refilling
    /// the accumulator in bulk (one 64-bit load when it runs empty inside
    /// the stream) instead of byte-at-a-time per value. Produces exactly
    /// the codes repeated [`BitUnpacker::next`] calls would, including the
    /// zero padding past the end of the stream.
    fn dequant_span(&mut self, zero: f32, scale: f32, out: &mut [f32]) {
        let mask = (1u64 << self.bits) - 1;
        let mut i = 0usize;
        while i < out.len() {
            if self.acc_bits < self.bits {
                if self.acc_bits == 0 && self.pos + 8 <= self.bytes.len() {
                    let word = &self.bytes[self.pos..self.pos + 8];
                    self.acc = u64::from_le_bytes(word.try_into().unwrap());
                    self.acc_bits = 64;
                    self.pos += 8;
                } else {
                    while self.acc_bits <= 56 {
                        let byte = self.bytes.get(self.pos).copied().unwrap_or(0);
                        self.acc |= (byte as u64) << self.acc_bits;
                        self.acc_bits += 8;
                        self.pos += 1;
                    }
                }
            }
            let avail = (self.acc_bits / self.bits) as usize;
            let take = avail.min(out.len() - i);
            for o in &mut out[i..i + take] {
                let code = (self.acc & mask) as u32;
                self.acc >>= self.bits;
                self.acc_bits -= self.bits;
                *o = (code as f32 - zero) * scale;
            }
            i += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_matrix;

    #[test]
    fn round_trip_error_is_bounded() {
        let m = seeded_matrix(32, 128, 7, 1.0);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        let d = q.dequantize();
        let err = m.max_abs_diff(&d);
        assert!(
            err <= q.error_bound(),
            "err {err} > bound {}",
            q.error_bound()
        );
        // 4-bit over [-1,1]-ish weights: error well under 0.2.
        assert!(err < 0.2, "err = {err}");
    }

    #[test]
    fn more_bits_means_less_error() {
        let m = seeded_matrix(16, 256, 3, 1.0);
        let errs: Vec<f32> = [3u32, 4, 6, 8]
            .iter()
            .map(|&bits| {
                let cfg = QuantConfig {
                    bits,
                    ..QuantConfig::paper_default()
                };
                m.max_abs_diff(&QuantizedMatrix::quantize(&m, cfg).dequantize())
            })
            .collect();
        assert!(
            errs[0] > errs[1] && errs[1] > errs[2] && errs[2] > errs[3],
            "{errs:?}"
        );
    }

    #[test]
    fn storage_shrinks_roughly_four_x_at_4_bits() {
        let m = seeded_matrix(64, 256, 1, 1.0);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        let full = 4 * 64 * 256;
        let ratio = q.stored_bytes() as f64 / full as f64;
        assert!((0.12..0.20).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn constant_matrix_quantizes_exactly() {
        let m = Matrix::from_fn(8, 64, |_, _| 0.75);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        assert!(m.max_abs_diff(&q.dequantize()) < 1e-5);
    }

    #[test]
    fn ragged_tail_group_round_trips() {
        // 100 cols is not a multiple of 64: the tail group is short.
        let m = seeded_matrix(3, 100, 5, 2.0);
        let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
        let d = q.dequantize();
        assert_eq!(d.rows(), 3);
        assert_eq!(d.cols(), 100);
        assert!(m.max_abs_diff(&d) <= q.error_bound());
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=8")]
    fn invalid_bits_rejected() {
        let m = Matrix::zeros(2, 2);
        let _ = QuantizedMatrix::quantize(
            &m,
            QuantConfig {
                bits: 1,
                group_size: 64,
                zero_group_size: 128,
            },
        );
    }

    #[test]
    fn grouped_dequantize_matches_reference_bitwise() {
        for (rows, cols) in [(32usize, 128usize), (3, 100), (1, 1), (0, 7), (5, 63)] {
            let m = seeded_matrix(rows, cols, 11, 1.5);
            let q = QuantizedMatrix::quantize(&m, QuantConfig::paper_default());
            let mut fast = Matrix::zeros(0, 0);
            let mut reference = Matrix::zeros(0, 0);
            q.dequantize_into(&mut fast);
            q.dequantize_reference_into(&mut reference);
            assert_eq!(fast, reference, "{rows}x{cols}");
        }
    }

    #[test]
    fn unpacker_at_matches_streaming() {
        for bits in 2..=8u32 {
            let codes: Vec<u32> = (0..200).map(|i| (i * 37 + 11) % (1 << bits)).collect();
            let mut p = BitPacker::new(bits, codes.len());
            for &c in &codes {
                p.push(c);
            }
            let bytes = p.into_bytes();
            for start in [0usize, 1, 7, 63, 64, 65, 199] {
                let mut u = BitUnpacker::at(bits, &bytes, start);
                for (off, &c) in codes[start..].iter().enumerate() {
                    assert_eq!(u.next(), c, "bits {bits} start {start} off {off}");
                }
            }
        }
    }

    #[test]
    fn fused_gemm_matches_dequantize_then_gemm() {
        let w = seeded_matrix(24, 96, 9, 1.0);
        let q = QuantizedMatrix::quantize(&w, QuantConfig::paper_default());
        let a = seeded_matrix(5, 96, 4, 1.0);
        let staged = a.matmul_nt(&q.dequantize());
        let mut fused = Matrix::zeros(5, 24);
        q.matmul_nt_fused_into(&a, &mut fused);
        assert_eq!(fused, staged);
    }

    #[test]
    fn fused_gemm_handles_empty_shapes() {
        let cfg = QuantConfig::paper_default();
        // Zero a-rows.
        let q = QuantizedMatrix::quantize(&seeded_matrix(8, 16, 1, 1.0), cfg);
        let mut out = Matrix::zeros(0, 8);
        q.matmul_nt_fused_into(&Matrix::zeros(0, 16), &mut out);
        assert_eq!(out, Matrix::zeros(0, 8));
        // Zero weight rows.
        let q = QuantizedMatrix::quantize(&Matrix::zeros(0, 16), cfg);
        let mut out = Matrix::zeros(3, 0);
        q.matmul_nt_fused_into(&seeded_matrix(3, 16, 2, 1.0), &mut out);
        assert_eq!(out.rows(), 3);
        // Zero inner dimension: output must still be written (zeros).
        let q = QuantizedMatrix::quantize(&Matrix::zeros(4, 0), cfg);
        let mut out = Matrix::from_fn(2, 4, |_, _| 9.0);
        q.matmul_nt_fused_into(&Matrix::zeros(2, 0), &mut out);
        assert_eq!(out, Matrix::zeros(2, 4));
    }

    #[test]
    fn quantized_copy_from_round_trips() {
        let cfg = QuantConfig::paper_default();
        let src = QuantizedMatrix::quantize(&seeded_matrix(8, 64, 3, 1.0), cfg);
        let mut dst = QuantizedMatrix::quantize(&Matrix::zeros(0, 0), cfg);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.dequantize(), src.dequantize());
    }

    #[test]
    fn bit_packer_round_trips_all_widths() {
        for bits in 2..=8u32 {
            let codes: Vec<u32> = (0..100).map(|i| i % (1 << bits)).collect();
            let mut p = BitPacker::new(bits, codes.len());
            for &c in &codes {
                p.push(c);
            }
            let bytes = p.into_bytes();
            assert_eq!(bytes.len(), (100 * bits as usize).div_ceil(8));
            let mut u = BitUnpacker::new(bits, &bytes);
            for &c in &codes {
                assert_eq!(u.next(), c, "width {bits}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip error never exceeds the analytic bound, for random
        /// shapes, widths and value ranges.
        #[test]
        fn quantize_error_bound_holds(
            rows in 1usize..6,
            cols in 1usize..200,
            bits in 3u32..=8,
            scale in 0.01f32..100.0,
            seed in 0u64..50,
        ) {
            let m = crate::init::seeded_matrix(rows, cols, seed, scale);
            let cfg = QuantConfig { bits, group_size: 32, zero_group_size: 64 };
            let q = QuantizedMatrix::quantize(&m, cfg);
            let d = q.dequantize();
            prop_assert!(m.max_abs_diff(&d) <= q.error_bound() * 1.001);
        }

        /// The grouped bulk dequantizer is byte-identical to the retained
        /// per-element reference for every bit width and ragged tail.
        #[test]
        fn grouped_dequantize_matches_reference(
            rows in 0usize..6,
            cols in 0usize..150,
            bits in 2u32..=8,
            seed in 0u64..50,
        ) {
            let m = crate::init::seeded_matrix(rows, cols, seed, 1.0);
            let cfg = QuantConfig { bits, group_size: 32, zero_group_size: 64 };
            let q = QuantizedMatrix::quantize(&m, cfg);
            let mut fast = Matrix::zeros(0, 0);
            let mut reference = Matrix::zeros(0, 0);
            q.dequantize_into(&mut fast);
            q.dequantize_reference_into(&mut reference);
            prop_assert_eq!(fast, reference);
        }

        /// The fused quantized GEMM is byte-identical to dequantize +
        /// `matmul_nt` for every bit width 2–8, ragged tail groups (cols
        /// not a multiple of the group size), weight-row tails (< 8 rows
        /// left), and every available kernel backend.
        #[test]
        fn fused_gemm_matches_staged_exactly(
            m in 0usize..7,
            k in 0usize..100,
            n in 0usize..20,
            bits in 2u32..=8,
            seed in 0u64..50,
        ) {
            let w = crate::init::seeded_matrix(n, k, seed, 1.0);
            let cfg = QuantConfig { bits, group_size: 32, zero_group_size: 64 };
            let q = QuantizedMatrix::quantize(&w, cfg);
            let a = crate::init::seeded_matrix(m, k, seed.wrapping_add(17), 1.0);
            let deq = q.dequantize();
            for backend in [KernelBackend::Scalar, KernelBackend::Sse2, KernelBackend::Avx2] {
                if !backend.is_available() {
                    continue;
                }
                let mut staged = Matrix::zeros(m, n);
                a.matmul_nt_into_with_backend(&deq, &mut staged, 1, backend);
                let mut fused = Matrix::from_fn(m, n, |_, _| -7.0);
                q.matmul_nt_fused_with_backend(&a, &mut fused, backend);
                prop_assert_eq!(&fused, &staged, "backend {}", backend);
            }
        }

        /// Bit-packing round-trips arbitrary code streams.
        #[test]
        fn packer_round_trips(
            bits in 2u32..=8,
            codes in proptest::collection::vec(0u32..256, 0..300),
        ) {
            let codes: Vec<u32> = codes.iter().map(|&c| c % (1 << bits)).collect();
            let mut p = BitPacker::new(bits, codes.len());
            for &c in &codes {
                p.push(c);
            }
            let bytes = p.into_bytes();
            let mut u = BitUnpacker::new(bits, &bytes);
            for &c in &codes {
                prop_assert_eq!(u.next(), c);
            }
        }
    }
}
