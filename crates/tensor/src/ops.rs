//! Activation functions, normalizations, softmax and top-k — the
//! non-matmul kernels of a transformer block.

/// Numerically stable in-place softmax over one slice.
///
/// # Examples
///
/// ```
/// use klotski_tensor::ops::softmax_inplace;
///
/// let mut logits = vec![1.0, 2.0, 3.0];
/// softmax_inplace(&mut logits);
/// let sum: f32 = logits.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// assert!(logits[2] > logits[1] && logits[1] > logits[0]);
/// ```
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// SiLU (swish) activation: `x · σ(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// ReLU activation.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// In-place RMS normalization with learned `weight`, as in Mixtral.
///
/// # Panics
///
/// Panics if `xs.len() != weight.len()`.
pub fn rmsnorm_inplace(xs: &mut [f32], weight: &[f32], eps: f32) {
    assert_eq!(xs.len(), weight.len(), "rmsnorm shape mismatch");
    let ms: f32 = xs.iter().map(|x| x * x).sum::<f32>() / xs.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for (x, &w) in xs.iter_mut().zip(weight) {
        *x = *x * inv * w;
    }
}

/// In-place LayerNorm with learned `weight` and `bias`.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn layernorm_inplace(xs: &mut [f32], weight: &[f32], bias: &[f32], eps: f32) {
    assert_eq!(xs.len(), weight.len(), "layernorm shape mismatch");
    assert_eq!(xs.len(), bias.len(), "layernorm shape mismatch");
    let n = xs.len() as f32;
    let mean: f32 = xs.iter().sum::<f32>() / n;
    let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for ((x, &w), &b) in xs.iter_mut().zip(weight).zip(bias) {
        *x = (*x - mean) * inv * w + b;
    }
}

/// Indices and values of the `k` largest elements, sorted descending
/// (ties broken by lower index, like `torch.topk`).
///
/// # Examples
///
/// ```
/// use klotski_tensor::ops::top_k;
///
/// let picks = top_k(&[0.1, 0.7, 0.3, 0.7], 2);
/// assert_eq!(picks, vec![(1, 0.7), (3, 0.7)]);
/// ```
pub fn top_k(xs: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut idx = Vec::new();
    let mut out = Vec::new();
    top_k_into(xs, k, &mut idx, &mut out);
    out
}

/// [`top_k`] into reused buffers — the allocation-free form for decode
/// hot loops. `idx` is sort scratch; `out` receives the picks. Selection
/// and ordering are identical to [`top_k`] (the comparator is a total
/// order, so the unstable sort is deterministic).
// analyze: no_alloc
pub fn top_k_into(xs: &[f32], k: usize, idx: &mut Vec<usize>, out: &mut Vec<(usize, f32)>) {
    idx.clear();
    idx.extend(0..xs.len());
    idx.sort_unstable_by(|&a, &b| xs[b].total_cmp(&xs[a]).then(a.cmp(&b)));
    out.clear();
    out.extend(idx.iter().take(k).map(|&i| (i, xs[i])));
}

/// Index of the largest element (first on ties); `None` when empty.
///
/// A single scan with `total_cmp` — no allocation, and bit-identical in
/// selection to `top_k(xs, 1)` (strictly-greater replacement keeps the
/// first index on ties).
// analyze: no_alloc
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, x) in xs.iter().enumerate() {
        match best {
            Some(b) if xs[b].total_cmp(x).is_ge() => {}
            _ => best = Some(i),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_invariant_to_shift() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![101.0, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut xs = vec![-1e30, 0.0, 1e30];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((xs[2] - 1.0).abs() < 1e-6);
        softmax_inplace(&mut []);
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-6);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn rmsnorm_unit_weight_gives_unit_rms() {
        let mut xs = vec![3.0, -4.0, 12.0, 0.0];
        let w = vec![1.0; 4];
        rmsnorm_inplace(&mut xs, &w, 1e-6);
        let rms: f32 = (xs.iter().map(|x| x * x).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_centers_and_scales() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        let w = vec![1.0; 4];
        let b = vec![0.0; 4];
        layernorm_inplace(&mut xs, &w, &b, 1e-6);
        let mean: f32 = xs.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let picks = top_k(&[0.2, 0.9, 0.5], 5);
        assert_eq!(picks.len(), 3);
        assert_eq!(picks[0].0, 1);
        assert_eq!(picks[2].0, 0);
        assert_eq!(argmax(&[0.2, 0.9, 0.5]), Some(1));
        assert_eq!(argmax(&[]), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Softmax outputs a probability vector for any finite input.
        #[test]
        fn softmax_is_distribution(xs in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
            let mut ys = xs.clone();
            softmax_inplace(&mut ys);
            prop_assert!(ys.iter().all(|&y| (0.0..=1.0).contains(&y)));
            prop_assert!((ys.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }

        /// Softmax preserves the argmax.
        #[test]
        fn softmax_preserves_argmax(xs in proptest::collection::vec(-50.0f32..50.0, 2..64)) {
            let before = argmax(&xs);
            let mut ys = xs.clone();
            softmax_inplace(&mut ys);
            prop_assert_eq!(before, argmax(&ys));
        }

        /// top_k returns k strictly non-increasing values covering the max.
        #[test]
        fn top_k_is_sorted(xs in proptest::collection::vec(-50.0f32..50.0, 1..64), k in 1usize..8) {
            let picks = top_k(&xs, k);
            prop_assert_eq!(picks.len(), k.min(xs.len()));
            for w in picks.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
            let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(picks[0].1, max);
        }
    }
}
