//! Deterministic weight initialization.
//!
//! The native execution path needs *some* weights; their values only matter
//! in that they must be reproducible (so pipelined execution can be checked
//! bit-exactly against the reference) and reasonably scaled (so softmax and
//! norms behave). Weights are drawn uniform in `[-scale/√in, scale/√in]`
//! from a seeded PRNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// A seeded uniform matrix in `[-scale, scale]`.
///
/// # Examples
///
/// ```
/// use klotski_tensor::init::seeded_matrix;
///
/// let a = seeded_matrix(4, 8, 42, 1.0);
/// let b = seeded_matrix(4, 8, 42, 1.0);
/// assert_eq!(a, b); // same seed, same weights
/// ```
pub fn seeded_matrix(rows: usize, cols: usize, seed: u64, scale: f32) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
}

/// A seeded Xavier-style matrix: uniform in `[-1/√cols, 1/√cols]`,
/// appropriate for `x · Wᵀ` projections.
pub fn xavier_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let scale = 1.0 / (cols as f32).sqrt();
    seeded_matrix(rows, cols, seed, scale)
}

/// A seeded weight vector near 1.0 (for norm gains).
pub fn norm_weight(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    (0..len)
        .map(|_| 1.0 + rng.gen_range(-0.05..=0.05))
        .collect()
}

/// Derives a sub-seed for component `tag` of entity `index` under `root` —
/// a tiny splitmix so every tensor in a model gets an independent stream.
pub fn sub_seed(root: u64, tag: u64, index: u64) -> u64 {
    let mut z = root
        .wrapping_add(tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_matrices_are_reproducible_and_seed_sensitive() {
        let a = seeded_matrix(8, 8, 1, 1.0);
        let b = seeded_matrix(8, 8, 1, 1.0);
        let c = seeded_matrix(8, 8, 2, 1.0);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn xavier_scale_shrinks_with_width() {
        let wide = xavier_matrix(4, 1024, 3);
        let max = wide.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max <= 1.0 / 32.0 + 1e-6);
    }

    #[test]
    fn norm_weights_hover_around_one() {
        let w = norm_weight(256, 9);
        assert!(w.iter().all(|&x| (0.94..=1.06).contains(&x)));
    }

    #[test]
    fn sub_seeds_do_not_collide_trivially() {
        let mut seen = std::collections::HashSet::new();
        for tag in 0..8 {
            for idx in 0..64 {
                assert!(seen.insert(sub_seed(42, tag, idx)), "collision");
            }
        }
    }
}
