//! Row-major `f32` matrices and the handful of BLAS-like kernels the native
//! MoE path needs.
//!
//! Every kernel comes in three flavors with **bit-identical** results:
//!
//! * a `*_naive` reference (the textbook loop, kept in-tree so tests can
//!   assert exact agreement),
//! * a cache-blocked (tiled) kernel — the default behind [`Matrix::matmul`]
//!   and [`Matrix::matmul_nt`] — which reorders *which element is computed
//!   when* but never the per-element accumulation order, and
//! * a row-parallel threaded variant that splits output rows over a scoped
//!   thread team (each row's arithmetic is untouched, so parallelism is
//!   numerics-neutral).
//!
//! The bit-exactness invariant is what lets the native MoE pipeline swap
//! per-token matvecs for batched GEMMs without perturbing the
//! pipeline-vs-reference comparisons.
//!
//! With the `simd` cargo feature the register micro-kernels additionally
//! dispatch to explicit x86-64 intrinsic implementations (see
//! [`crate::simd`]); those are bit-identical too — each vector lane is one
//! output's ascending-k scalar chain — so backend choice only moves
//! wall-clock. The `*_with_backend` entry points pin a backend explicitly;
//! everything else uses [`active_backend`](crate::simd::active_backend).

use crate::simd::{active_backend, KernelBackend};
use std::fmt;

/// A-row block: output rows processed together so their slices of `rhs`
/// stay hot in L1 across the j-tile.
const TILE_I: usize = 16;
/// Output-column block (j-tile): bounds the working set of B rows (`nt`)
/// or B columns (`nn`) touched per pass.
const TILE_J: usize = 64;
/// Inner-dimension block for the `A·B` kernel; k-blocks are visited in
/// ascending order with the accumulator carried across blocks, so tiling
/// k does not change any element's summation sequence.
const TILE_K: usize = 64;

/// Multiply-add count below which spawning threads costs more than it
/// saves (≈1M mul-adds ≈ 0.5 ms single-threaded).
const PAR_MADD_THRESHOLD: usize = 1 << 20;

/// How many worker threads are worth using for a kernel of `madds`
/// multiply-adds: 1 below [`PAR_MADD_THRESHOLD`], else the machine's
/// parallelism capped at 8. Results are identical at any thread count;
/// this only tunes wall-clock.
pub fn auto_threads(madds: usize) -> usize {
    if madds < PAR_MADD_THRESHOLD {
        1
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// Tiled `out = A · B` over `m` rows of `a` (row-major, inner dim `k`,
/// `b` is `k × n`). Per output element the k-accumulation order is the
/// naive ikj order, so results are bit-identical to [`mm_naive_rows`].
fn mm_rows(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    backend: KernelBackend,
) {
    out.fill(0.0);
    for ib in (0..m).step_by(TILE_I) {
        let ie = (ib + TILE_I).min(m);
        for kb in (0..k).step_by(TILE_K) {
            let ke = (kb + TILE_K).min(k);
            for jb in (0..n).step_by(TILE_J) {
                let je = (jb + TILE_J).min(n);
                for i in ib..ie {
                    let a_row = &a[i * k..(i + 1) * k];
                    let o_row = &mut out[i * n + jb..i * n + je];
                    for kk in kb..ke {
                        let av = a_row[kk];
                        let b_row = &b[kk * n + jb..kk * n + je];
                        axpy_b(backend, av, b_row, o_row);
                    }
                }
            }
        }
    }
}

/// `out[j] += a · x[j]` — the axpy inner step of the nn kernel, with one
/// product rounded before each add (the per-element order every backend
/// preserves).
#[inline]
fn axpy_scalar(a: f32, x: &[f32], out: &mut [f32]) {
    for (o, &bv) in out.iter_mut().zip(x) {
        *o += a * bv;
    }
}

/// Backend dispatch for the axpy step. All arms are bit-identical; the
/// SIMD arms only exist when the `simd` feature compiles them in.
#[inline]
pub(crate) fn axpy_b(backend: KernelBackend, a: f32, x: &[f32], out: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match backend {
        // SAFETY: availability was checked when `backend` was selected
        // (detection or `force_backend`), and `x` covers `out`.
        KernelBackend::Avx2 => return unsafe { crate::simd::x86::axpy_avx2(a, x, out) },
        KernelBackend::Sse2 => return unsafe { crate::simd::x86::axpy_sse2(a, x, out) },
        KernelBackend::Scalar => {}
    }
    let _ = backend;
    axpy_scalar(a, x, out);
}

/// How many output columns the `nt` kernel carries per pass over k. Each
/// column keeps its **own** accumulator advancing in strict ascending-k
/// order (bit-identical to the one-at-a-time dot), but the 8 independent
/// dependency chains hide FMA latency — a single sequential chain caps a
/// scalar dot at ~1 mul-add per FMA-latency, several× below machine
/// throughput — and each `a` element is loaded once per 8 outputs.
pub(crate) const NT_COLS: usize = 8;

/// `NT_COLS` dots of one `a` row against consecutive `b` rows, sharing the
/// `a` loads across all column accumulators.
#[inline]
fn nt_micro_1xu(a_row: &[f32], rows: &[&[f32]; NT_COLS], acc: &mut [f32; NT_COLS]) {
    for (kk, &av) in a_row.iter().enumerate() {
        for u in 0..NT_COLS {
            acc[u] += av * rows[u][kk];
        }
    }
}

/// The 2×[`NT_COLS`] register micro-kernel: two `a` rows against the same
/// [`NT_COLS`] `b` rows, so every `b` element loaded feeds two mul-adds.
#[inline]
fn nt_micro_2xu(
    a0: &[f32],
    a1: &[f32],
    rows: &[&[f32]; NT_COLS],
    acc0: &mut [f32; NT_COLS],
    acc1: &mut [f32; NT_COLS],
) {
    for (kk, (&av0, &av1)) in a0.iter().zip(a1).enumerate() {
        for u in 0..NT_COLS {
            let bv = rows[u][kk];
            acc0[u] += av0 * bv;
            acc1[u] += av1 * bv;
        }
    }
}

/// Backend dispatch for the 1×[`NT_COLS`] micro-kernel. Callers must
/// ensure every `rows[u]` has at least `a_row.len()` elements.
#[inline]
pub(crate) fn nt_micro_1xu_b(
    backend: KernelBackend,
    a_row: &[f32],
    rows: &[&[f32]; NT_COLS],
    acc: &mut [f32; NT_COLS],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match backend {
        // SAFETY: availability was checked when `backend` was selected,
        // and the caller guarantees the row lengths.
        KernelBackend::Avx2 => {
            return unsafe { crate::simd::x86::nt_micro_1x8_avx2(a_row, rows, acc) }
        }
        KernelBackend::Sse2 => {
            return unsafe { crate::simd::x86::nt_micro_1x8_sse2(a_row, rows, acc) }
        }
        KernelBackend::Scalar => {}
    }
    let _ = backend;
    nt_micro_1xu(a_row, rows, acc);
}

/// Backend dispatch for the 2×[`NT_COLS`] micro-kernel. Callers must
/// ensure `a0.len() == a1.len()` and every `rows[u]` has at least
/// `a0.len()` elements.
#[inline]
pub(crate) fn nt_micro_2xu_b(
    backend: KernelBackend,
    a0: &[f32],
    a1: &[f32],
    rows: &[&[f32]; NT_COLS],
    acc0: &mut [f32; NT_COLS],
    acc1: &mut [f32; NT_COLS],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match backend {
        // SAFETY: availability was checked when `backend` was selected,
        // and the caller guarantees `a0.len() == a1.len()` and the row
        // lengths (doc contract above).
        KernelBackend::Avx2 => {
            return unsafe { crate::simd::x86::nt_micro_2x8_avx2(a0, a1, rows, acc0, acc1) }
        }
        KernelBackend::Sse2 => {
            return unsafe { crate::simd::x86::nt_micro_2x8_sse2(a0, a1, rows, acc0, acc1) }
        }
        KernelBackend::Scalar => {}
    }
    let _ = backend;
    nt_micro_2xu(a0, a1, rows, acc0, acc1);
}

/// One dot product, sequential accumulator — the remainder path and the
/// per-element definition the micro-kernels replicate exactly.
#[inline]
pub(crate) fn nt_dot(a_row: &[f32], b_row: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a_row.iter().zip(b_row) {
        acc += x * y;
    }
    acc
}

/// Tiled `out = A · Bᵀ` over `m` rows of `a` (`b` is `n × k` row-major).
/// Each element is one full-length dot product with a single sequential
/// accumulator — bit-identical to the naive per-element loop; the kernel
/// only reorders *which elements* are computed when (a 2×[`NT_COLS`]
/// register block inside [`TILE_I`] × [`TILE_J`] cache blocks). The
/// register block matters because one sequential chain is FMA-latency
/// bound: 16 independent accumulators hide the latency, and sharing each
/// `b` load across two rows halves the loads per mul-add.
fn mm_nt_rows(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    backend: KernelBackend,
) {
    for ib in (0..m).step_by(TILE_I) {
        let ie = (ib + TILE_I).min(m);
        for jb in (0..n).step_by(TILE_J) {
            let je = (jb + TILE_J).min(n);
            let mut j = jb;
            while j + NT_COLS <= je {
                let rows: [&[f32]; NT_COLS] =
                    std::array::from_fn(|u| &b[(j + u) * k..(j + u) * k + k]);
                let mut i = ib;
                while i + 2 <= ie {
                    let (a0, a1) = (&a[i * k..(i + 1) * k], &a[(i + 1) * k..(i + 2) * k]);
                    let mut acc0 = [0.0f32; NT_COLS];
                    let mut acc1 = [0.0f32; NT_COLS];
                    nt_micro_2xu_b(backend, a0, a1, &rows, &mut acc0, &mut acc1);
                    out[i * n + j..i * n + j + NT_COLS].copy_from_slice(&acc0);
                    out[(i + 1) * n + j..(i + 1) * n + j + NT_COLS].copy_from_slice(&acc1);
                    i += 2;
                }
                if i < ie {
                    let mut acc = [0.0f32; NT_COLS];
                    nt_micro_1xu_b(backend, &a[i * k..(i + 1) * k], &rows, &mut acc);
                    out[i * n + j..i * n + j + NT_COLS].copy_from_slice(&acc);
                }
                j += NT_COLS;
            }
            // Column remainder: plain dots.
            for i in ib..ie {
                let a_row = &a[i * k..(i + 1) * k];
                for jj in j..je {
                    out[i * n + jj] = nt_dot(a_row, &b[jj * k..(jj + 1) * k]);
                }
            }
        }
    }
}

/// Splits `out` into per-thread contiguous row chunks and runs `kernel`
/// on each chunk in a scoped thread team. Row-disjoint writes keep every
/// row's arithmetic identical to the single-threaded kernel.
fn par_rows<K>(a: &[f32], m: usize, k: usize, n: usize, out: &mut [f32], threads: usize, kernel: K)
where
    K: Fn(&[f32], usize, usize, &mut [f32]) + Copy + Send,
{
    let threads = threads.clamp(1, m.max(1));
    if threads <= 1 || k == 0 || n == 0 {
        kernel(a, m, k, out);
        return;
    }
    let chunk_rows = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        for a_chunk in a.chunks(chunk_rows * k) {
            let rows_here = a_chunk.len() / k;
            let (o_chunk, tail) = std::mem::take(&mut rest).split_at_mut(rows_here * n);
            rest = tail;
            scope.spawn(move || kernel(a_chunk, rows_here, k, o_chunk));
        }
    });
}

/// A dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use klotski_tensor::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// The empty `0 × 0` matrix. Allocation-free — the natural placeholder
/// for pooled buffers moved out with `std::mem::take`.
impl Default for Matrix {
    fn default() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// `self · rhs` (new allocation), tiled kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `out = self · rhs`, reusing `out`'s buffer. Cache-blocked, with the
    /// naive ikj per-element accumulation order preserved, so results are
    /// bit-identical to [`Matrix::matmul_naive`]. Unlike the pre-tiled
    /// kernel there is **no** `a == 0.0` skip: runtime no longer depends on
    /// the data, and `-0.0`/`NaN`/`inf` operands follow IEEE semantics
    /// (`0 · NaN` propagates instead of being silently dropped).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_threaded(rhs, out, 1);
    }

    /// [`Matrix::matmul_into`] with output rows split over `threads`
    /// scoped threads (1 runs inline). Bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_into_threaded(&self, rhs: &Matrix, out: &mut Matrix, threads: usize) {
        self.matmul_into_with_backend(rhs, out, threads, active_backend());
    }

    /// [`Matrix::matmul_into_threaded`] with the kernel backend pinned
    /// explicitly rather than read from the process-global setting —
    /// race-free for A/B tests and benchmarks. Bit-identical at any
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_into_with_backend(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        threads: usize,
        backend: KernelBackend,
    ) {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "output rows mismatch");
        assert_eq!(out.cols, rhs.cols, "output cols mismatch");
        let (k, n) = (self.cols, rhs.cols);
        let b = &rhs.data;
        par_rows(
            &self.data,
            self.rows,
            k,
            n,
            &mut out.data,
            threads,
            move |a, m, k, o| mm_rows(a, m, k, b, n, o, backend),
        );
    }

    /// Reference `self · rhs`: the naive ikj loop, kept so tests can
    /// assert the tiled/threaded kernels are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let o_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` (new allocation), tiled kernel — the natural layout
    /// for weight matrices stored as `[out_features, in_features]`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// `out = self · rhsᵀ`, reusing `out`'s buffer. Cache-blocked; each
    /// element is one sequential full-length dot product, bit-identical to
    /// [`Matrix::matmul_nt_naive`].
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_nt_into_threaded(rhs, out, 1);
    }

    /// [`Matrix::matmul_nt_into`] with output rows split over `threads`
    /// scoped threads (1 runs inline). Bit-identical at any thread count;
    /// use [`auto_threads`] to pick a worthwhile count.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_nt_into_threaded(&self, rhs: &Matrix, out: &mut Matrix, threads: usize) {
        self.matmul_nt_into_with_backend(rhs, out, threads, active_backend());
    }

    /// [`Matrix::matmul_nt_into_threaded`] with the kernel backend pinned
    /// explicitly rather than read from the process-global setting —
    /// race-free for A/B tests and benchmarks. Bit-identical at any
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_nt_into_with_backend(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        threads: usize,
        backend: KernelBackend,
    ) {
        assert_eq!(self.cols, rhs.cols, "inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "output rows mismatch");
        assert_eq!(out.cols, rhs.rows, "output cols mismatch");
        let (k, n) = (self.cols, rhs.rows);
        let b = &rhs.data;
        par_rows(
            &self.data,
            self.rows,
            k,
            n,
            &mut out.data,
            threads,
            move |a, m, k, o| mm_nt_rows(a, m, k, b, n, o, backend),
        );
    }

    /// `out[j] = Σ_k x[k] · self[j][k]` — the matrix–vector product
    /// `self · x` for a weight matrix stored `[out_features, in_features]`,
    /// through the blocked nt kernel (the out-features dimension gets the
    /// [`NT_COLS`] register blocking). Bit-identical to a per-row
    /// sequential dot.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols` or `out.len() != self.rows`.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) {
        self.matvec_into_with_backend(x, out, active_backend());
    }

    /// [`Matrix::matvec_into`] with the kernel backend pinned explicitly.
    /// Bit-identical at any backend.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols` or `out.len() != self.rows`.
    pub fn matvec_into_with_backend(&self, x: &[f32], out: &mut [f32], backend: KernelBackend) {
        assert_eq!(x.len(), self.cols, "matvec input width mismatch");
        assert_eq!(out.len(), self.rows, "matvec output width mismatch");
        mm_nt_rows(x, 1, self.cols, &self.data, self.rows, out, backend);
    }

    /// Reference `self · rhsᵀ`: the naive per-element dot product, kept so
    /// tests can assert the tiled/threaded kernels are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_nt_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transpose (new allocation).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Becomes a copy of `src`, reshaping as needed but reusing the
    /// existing buffer when its capacity allows — the allocation-free
    /// "transfer into a resident buffer" primitive (after the first use at
    /// a given shape, this is a pure memcpy).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Reshapes to `rows × cols`, reusing the existing buffer when its
    /// capacity allows — the scratch-reuse primitive for hot loops that
    /// cycle through group sizes (allocation-free once the buffer has
    /// reached its high-water shape, and a no-op when the shape repeats).
    ///
    /// Element values are **not** initialized: shrinking keeps a stale
    /// prefix and growing zero-fills only the new tail, so treat the
    /// result as write-only scratch. Every kernel that writes into a
    /// resized matrix (`matmul*_into`, `weighted_rows_into`, row copies)
    /// overwrites its full output, which is why the hot loops can skip
    /// the memset a zeroing reshape would pay per step.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Element-wise `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f32) {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum absolute element difference versus `rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

/// A strided view of equally-shaped rows inside a flat slab: row `p` is
/// `data[p·stride + offset .. p·stride + offset + width]`.
///
/// This is exactly the shape of one attention head's keys (or values)
/// inside a per-sequence KV slab laid out `[positions × d_model]`: stride
/// `d_model`, column offset `head · head_dim`, width `head_dim`. The
/// strided kernels below ([`matvec_strided_into`], [`weighted_rows_into`])
/// read through this view so the slab is never gathered or copied.
#[derive(Debug, Clone, Copy)]
pub struct StridedRows<'a> {
    data: &'a [f32],
    stride: usize,
    offset: usize,
    width: usize,
}

impl<'a> StridedRows<'a> {
    /// Views `data` as rows of `width` starting `offset` into each
    /// `stride`-long record.
    ///
    /// # Panics
    ///
    /// Panics if a row would overrun its record (`offset + width >
    /// stride`) or `stride` is zero while `data` is not empty.
    pub fn new(data: &'a [f32], stride: usize, offset: usize, width: usize) -> Self {
        assert!(
            offset + width <= stride || (data.is_empty() && width == 0),
            "strided row overruns its record: offset {offset} + width {width} > stride {stride}"
        );
        StridedRows {
            data,
            stride,
            offset,
            width,
        }
    }

    /// Number of complete records in the slab.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    /// Whether the slab holds no complete record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of each row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds.
    pub fn row(&self, p: usize) -> &'a [f32] {
        let start = p * self.stride + self.offset;
        &self.data[start..start + self.width]
    }
}

/// Reference for [`matvec_strided_into`]: one sequential ascending-k dot
/// per selected row — the per-score arithmetic of per-token attention,
/// kept in-tree so tests can assert the blocked kernel is bit-identical.
///
/// # Panics
///
/// Panics if `out.len() != idx.len()` or `x.len() != rows.width()`.
pub fn matvec_strided_naive(x: &[f32], rows: &StridedRows<'_>, idx: &[usize], out: &mut [f32]) {
    assert_eq!(out.len(), idx.len(), "strided matvec output len mismatch");
    assert_eq!(x.len(), rows.width(), "strided matvec input width mismatch");
    for (o, &p) in out.iter_mut().zip(idx) {
        *o = nt_dot(x, rows.row(p));
    }
}

/// `out[i] = x · rows[idx[i]]` — the scores kernel of batched attention:
/// the query dotted against every visible cached key, through the
/// [`NT_COLS`]-way register blocking of the `nt` GEMM (each selected row
/// keeps its own accumulator advancing in strict ascending-k order, so
/// every score is **bit-identical** to [`matvec_strided_naive`]'s
/// one-at-a-time dot, while the independent chains hide FMA latency and
/// each `x` element is loaded once per [`NT_COLS`] scores).
///
/// # Panics
///
/// Panics if `out.len() != idx.len()` or `x.len() != rows.width()`.
pub fn matvec_strided_into(x: &[f32], rows: &StridedRows<'_>, idx: &[usize], out: &mut [f32]) {
    matvec_strided_into_with_backend(x, rows, idx, out, active_backend());
}

/// [`matvec_strided_into`] with the kernel backend pinned explicitly.
/// Bit-identical at any backend.
///
/// # Panics
///
/// Panics if `out.len() != idx.len()` or `x.len() != rows.width()`.
// analyze: no_alloc
pub fn matvec_strided_into_with_backend(
    x: &[f32],
    rows: &StridedRows<'_>,
    idx: &[usize],
    out: &mut [f32],
    backend: KernelBackend,
) {
    assert_eq!(out.len(), idx.len(), "strided matvec output len mismatch");
    assert_eq!(x.len(), rows.width(), "strided matvec input width mismatch");
    let mut i = 0;
    while i + NT_COLS <= idx.len() {
        let sel: [&[f32]; NT_COLS] = std::array::from_fn(|u| rows.row(idx[i + u]));
        let mut acc = [0.0f32; NT_COLS];
        nt_micro_1xu_b(backend, x, &sel, &mut acc);
        out[i..i + NT_COLS].copy_from_slice(&acc);
        i += NT_COLS;
    }
    for (o, &p) in out[i..].iter_mut().zip(&idx[i..]) {
        *o = nt_dot(x, rows.row(p));
    }
}

/// How many weighted rows [`weighted_rows_into`] folds per pass: enough to
/// amortize the `out` load/store round-trip, few enough to stay in
/// registers.
pub(crate) const WR_ROWS: usize = 4;

/// Backend dispatch for the [`WR_ROWS`]-row weighted-accumulate block.
/// Callers must ensure every `sel[u]` has at least `out.len()` elements.
#[inline]
fn wr_block_b(
    backend: KernelBackend,
    wv: &[f32; WR_ROWS],
    sel: &[&[f32]; WR_ROWS],
    out: &mut [f32],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match backend {
        // SAFETY: availability was checked when `backend` was selected,
        // and the caller guarantees the row lengths.
        KernelBackend::Avx2 => return unsafe { crate::simd::x86::wr_block_avx2(wv, sel, out) },
        KernelBackend::Sse2 => return unsafe { crate::simd::x86::wr_block_sse2(wv, sel, out) },
        KernelBackend::Scalar => {}
    }
    let _ = backend;
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = *o;
        for u in 0..WR_ROWS {
            acc += wv[u] * sel[u][j];
        }
        *o = acc;
    }
}

/// Reference for [`weighted_rows_into`]: `out[j] = Σ_i w[i] ·
/// rows[idx[i]][j]`, accumulating positions one at a time in ascending-`i`
/// order — the AXPY loop of per-token attention's AV product.
///
/// # Panics
///
/// Panics if `w.len() != idx.len()` or `out.len() != rows.width()`.
pub fn weighted_rows_naive(w: &[f32], rows: &StridedRows<'_>, idx: &[usize], out: &mut [f32]) {
    assert_eq!(w.len(), idx.len(), "weighted rows weight len mismatch");
    assert_eq!(
        out.len(),
        rows.width(),
        "weighted rows output width mismatch"
    );
    out.fill(0.0);
    for (&wi, &p) in w.iter().zip(idx) {
        for (o, &v) in out.iter_mut().zip(rows.row(p)) {
            *o += wi * v;
        }
    }
}

/// `out[j] = Σ_i w[i] · rows[idx[i]][j]` — the AV kernel of batched
/// attention: the softmaxed scores folded against the visible cached
/// values. Rows are consumed [`WR_ROWS`] at a time with each output
/// element carried in a register across the block, but every element's
/// adds still happen one position at a time in ascending-`i` order —
/// **bit-identical** to [`weighted_rows_naive`] (and hence to the
/// per-token AXPY), just without [`WR_ROWS`]−1 of every load/store
/// round-trip on `out`.
///
/// # Panics
///
/// Panics if `w.len() != idx.len()` or `out.len() != rows.width()`.
pub fn weighted_rows_into(w: &[f32], rows: &StridedRows<'_>, idx: &[usize], out: &mut [f32]) {
    weighted_rows_into_with_backend(w, rows, idx, out, active_backend());
}

/// [`weighted_rows_into`] with the kernel backend pinned explicitly.
/// Bit-identical at any backend.
///
/// # Panics
///
/// Panics if `w.len() != idx.len()` or `out.len() != rows.width()`.
// analyze: no_alloc
pub fn weighted_rows_into_with_backend(
    w: &[f32],
    rows: &StridedRows<'_>,
    idx: &[usize],
    out: &mut [f32],
    backend: KernelBackend,
) {
    assert_eq!(w.len(), idx.len(), "weighted rows weight len mismatch");
    assert_eq!(
        out.len(),
        rows.width(),
        "weighted rows output width mismatch"
    );
    out.fill(0.0);
    let mut i = 0;
    while i + WR_ROWS <= idx.len() {
        let sel: [&[f32]; WR_ROWS] = std::array::from_fn(|u| rows.row(idx[i + u]));
        let wv: [f32; WR_ROWS] = std::array::from_fn(|u| w[i + u]);
        wr_block_b(backend, &wv, &sel, out);
        i += WR_ROWS;
    }
    for (&wi, &p) in w[i..].iter().zip(&idx[i..]) {
        axpy_b(backend, wi, rows.row(p), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_nt_equals_matmul_of_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5 - 2.0);
        let w = Matrix::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 0.25);
        let direct = a.matmul_nt(&w);
        let via_t = a.matmul(&w.transpose());
        assert!(direct.max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| (r + 2 * c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        a.add_scaled(&b, 0.5);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0), 1.5);
    }

    #[test]
    fn rows_are_contiguous_views() {
        let mut a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
        a.row_mut(0)[2] = 9.0;
        assert_eq!(a.get(0, 2), 9.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 5]);
    }

    #[test]
    fn zero_times_nan_propagates() {
        // The old kernel skipped a == 0.0 rows, silently turning 0·NaN
        // into 0 and making runtime data-dependent. IEEE semantics now.
        let a = Matrix::from_rows(&[&[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[f32::NAN], &[2.0]]);
        assert!(a.matmul(&b).get(0, 0).is_nan(), "0·NaN must propagate");
        let bt = b.transpose();
        assert!(a.matmul_nt(&bt).get(0, 0).is_nan());
    }

    #[test]
    fn matmul_and_matmul_nt_agree_bitwise() {
        // Both kernels accumulate each element in ascending-k order from a
        // zero accumulator, so nn-vs-nt is exact, not just within an eps.
        let a = Matrix::from_fn(9, 33, |r, c| ((r * 33 + c) as f32).sin());
        let b = Matrix::from_fn(33, 17, |r, c| ((r * 17 + c) as f32).cos());
        assert_eq!(a.matmul(&b), a.matmul_nt(&b.transpose()));
    }

    #[test]
    fn tiled_kernels_cross_tile_boundaries_exactly() {
        // Shapes straddling every tile edge (TILE_I=16, TILE_J=64,
        // TILE_K=64) must still match the naive kernels bit-for-bit.
        let a = Matrix::from_fn(17, 65, |r, c| ((r * 65 + c) as f32 * 0.37).sin());
        let b = Matrix::from_fn(65, 66, |r, c| ((r * 66 + c) as f32 * 0.11).cos());
        assert_eq!(a.matmul(&b), a.matmul_naive(&b));
        let bt = b.transpose();
        assert_eq!(a.matmul_nt(&bt), a.matmul_nt_naive(&bt));
    }

    #[test]
    fn threaded_kernels_match_at_any_thread_count() {
        let a = Matrix::from_fn(23, 40, |r, c| ((r * 40 + c) as f32 * 0.2).sin());
        let b = Matrix::from_fn(40, 31, |r, c| ((r + 2 * c) as f32 * 0.3).cos());
        let bt = b.transpose();
        let nn = a.matmul_naive(&b);
        let nt = a.matmul_nt_naive(&bt);
        for threads in [1usize, 2, 3, 8, 64] {
            let mut out = Matrix::zeros(23, 31);
            a.matmul_into_threaded(&b, &mut out, threads);
            assert_eq!(out, nn, "nn threads={threads}");
            a.matmul_nt_into_threaded(&bt, &mut out, threads);
            assert_eq!(out, nt, "nt threads={threads}");
        }
    }

    #[test]
    fn empty_shapes_are_handled() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(a.matmul(&b).rows(), 0);
        let c = Matrix::zeros(4, 0);
        let d = Matrix::zeros(0, 3);
        let out = c.matmul(&d); // inner dimension zero: all-zero result
        assert_eq!(out, Matrix::zeros(4, 3));
        let e = Matrix::zeros(4, 0);
        assert_eq!(c.matmul_nt(&e), Matrix::zeros(4, 4));
    }

    #[test]
    fn auto_threads_has_a_floor_and_ceiling() {
        assert_eq!(auto_threads(0), 1);
        assert_eq!(auto_threads(1000), 1);
        assert!(auto_threads(usize::MAX) >= 1);
        assert!(auto_threads(usize::MAX) <= 8);
    }

    #[test]
    fn resize_reuses_capacity_without_initializing() {
        let mut m = Matrix::from_fn(4, 8, |r, c| (r * 8 + c) as f32);
        let cap = m.data.capacity();
        m.resize(2, 8);
        assert_eq!((m.rows(), m.cols()), (2, 8));
        assert_eq!(m.as_slice().len(), 16);
        assert_eq!(m.data.capacity(), cap, "shrinking resize reallocated");
        m.resize(4, 8);
        assert_eq!(m.data.capacity(), cap, "regrow within capacity reallocated");
        assert_eq!(m.as_slice().len(), 32, "regrow must restore the length");
    }

    #[test]
    fn strided_rows_views_the_right_slices() {
        // 3 records of stride 4; rows are the middle two columns.
        let slab: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let rows = StridedRows::new(&slab, 4, 1, 2);
        assert_eq!(rows.len(), 3);
        assert!(!rows.is_empty());
        assert_eq!(rows.width(), 2);
        assert_eq!(rows.row(0), &[1.0, 2.0]);
        assert_eq!(rows.row(2), &[9.0, 10.0]);
        assert!(StridedRows::new(&[], 4, 0, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn strided_rows_rejects_overrunning_width() {
        let slab = [0.0f32; 8];
        let _ = StridedRows::new(&slab, 4, 2, 3);
    }

    #[test]
    fn strided_matvec_matches_per_row_dots() {
        let slab: Vec<f32> = (0..40).map(|i| ((i * 7) as f32 * 0.1).sin()).collect();
        let rows = StridedRows::new(&slab, 8, 2, 5);
        let x: Vec<f32> = (0..5).map(|i| (i as f32 * 0.3).cos()).collect();
        // 5 selected records: crosses the NT_COLS remainder boundary only
        // when > 8, so also try 10 via duplicated indices.
        for idx in [vec![0usize, 2, 4], vec![4, 3, 2, 1, 0, 1, 2, 3, 4, 0]] {
            let mut blocked = vec![0.0f32; idx.len()];
            let mut naive = vec![0.0f32; idx.len()];
            matvec_strided_into(&x, &rows, &idx, &mut blocked);
            matvec_strided_naive(&x, &rows, &idx, &mut naive);
            assert_eq!(blocked, naive);
            for (o, &p) in naive.iter().zip(&idx) {
                assert_eq!(*o, nt_dot(&x, rows.row(p)));
            }
        }
    }

    #[test]
    fn weighted_rows_matches_sequential_axpy() {
        let slab: Vec<f32> = (0..48).map(|i| ((i * 3) as f32 * 0.2).cos()).collect();
        let rows = StridedRows::new(&slab, 6, 0, 6);
        let idx = [0usize, 3, 1, 7, 2, 5];
        let w: Vec<f32> = (0..6).map(|i| 0.1 + i as f32 * 0.05).collect();
        let mut blocked = vec![9.0f32; 6]; // pre-poisoned: kernels overwrite
        let mut naive = vec![-9.0f32; 6];
        weighted_rows_into(&w, &rows, &idx, &mut blocked);
        weighted_rows_naive(&w, &rows, &idx, &mut naive);
        assert_eq!(blocked, naive);
        // Hand-rolled ascending-position AXPY.
        let mut expect = vec![0.0f32; 6];
        for (&wi, &p) in w.iter().zip(&idx) {
            for (e, &v) in expect.iter_mut().zip(rows.row(p)) {
                *e += wi * v;
            }
        }
        assert_eq!(naive, expect);
    }

    #[test]
    fn strided_kernels_handle_empty_selections() {
        let slab = [1.0f32; 8];
        let rows = StridedRows::new(&slab, 4, 0, 4);
        let mut out: Vec<f32> = Vec::new();
        matvec_strided_into(&[0.5; 4], &rows, &[], &mut out);
        assert!(out.is_empty());
        let mut av = vec![3.0f32; 4];
        weighted_rows_into(&[], &rows, &[], &mut av);
        assert_eq!(av, vec![0.0; 4], "empty selection must zero the output");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    proptest! {
        /// (A·B)·C == A·(B·C) within float tolerance.
        #[test]
        fn matmul_is_associative(
            a in small_matrix(3, 4),
            b in small_matrix(4, 2),
            c in small_matrix(2, 5),
        ) {
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!(left.max_abs_diff(&right) < 1e-2);
        }

        /// Transposition reverses multiplication order: (A·B)ᵀ == Bᵀ·Aᵀ.
        #[test]
        fn transpose_reverses_product(
            a in small_matrix(3, 4),
            b in small_matrix(4, 2),
        ) {
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
        }

        /// Tiled and threaded A·B are bit-identical to the naive kernel on
        /// arbitrary shapes, including empty and 1-row matrices and shapes
        /// larger than the tile sizes.
        #[test]
        fn tiled_matmul_matches_naive_exactly(
            m in 0usize..35,
            k in 0usize..70,
            n in 0usize..70,
            threads in 1usize..5,
            raw_a in proptest::collection::vec(-10.0f32..10.0, 35 * 70),
            raw_b in proptest::collection::vec(-10.0f32..10.0, 70 * 70),
        ) {
            let a = Matrix::from_vec(m, k, raw_a[..m * k].to_vec());
            let b = Matrix::from_vec(k, n, raw_b[..k * n].to_vec());
            let reference = a.matmul_naive(&b);
            prop_assert_eq!(&a.matmul(&b), &reference);
            let mut out = Matrix::zeros(m, n);
            a.matmul_into_threaded(&b, &mut out, threads);
            prop_assert_eq!(&out, &reference);
        }

        /// The blocked strided-scores and AV kernels are bit-identical to
        /// their naive references for arbitrary slab shapes, head offsets,
        /// and row selections — including empty and single-row selections
        /// (the group-of-one and first-token attention cases).
        #[test]
        fn strided_kernels_match_naive_exactly(
            n_records in 0usize..20,
            stride in 1usize..12,
            n_sel in 0usize..30,
            sel_seed in 0usize..1000,
            raw in proptest::collection::vec(-4.0f32..4.0, 20 * 12),
            x in proptest::collection::vec(-4.0f32..4.0, 12),
            w in proptest::collection::vec(-2.0f32..2.0, 30),
        ) {
            // Derive offset/width consistent with the stride.
            let offset = sel_seed % stride;
            let width = (stride - offset).min(1 + sel_seed % 8);
            let slab = &raw[..n_records * stride];
            let rows = StridedRows::new(slab, stride, offset, width);
            let idx: Vec<usize> = if n_records == 0 {
                Vec::new()
            } else {
                (0..n_sel).map(|i| (i * 31 + sel_seed) % n_records).collect()
            };
            let mut blocked = vec![0.0f32; idx.len()];
            let mut naive = vec![0.0f32; idx.len()];
            matvec_strided_into(&x[..width], &rows, &idx, &mut blocked);
            matvec_strided_naive(&x[..width], &rows, &idx, &mut naive);
            prop_assert_eq!(blocked, naive);
            let mut av_blocked = vec![1.0f32; width];
            let mut av_naive = vec![-1.0f32; width];
            weighted_rows_into(&w[..idx.len()], &rows, &idx, &mut av_blocked);
            weighted_rows_naive(&w[..idx.len()], &rows, &idx, &mut av_naive);
            prop_assert_eq!(av_blocked, av_naive);
        }

        /// Every available SIMD backend is byte-identical to the scalar
        /// backend for both GEMM orientations and the matvec, on arbitrary
        /// shapes including empty, 1-row, and non-multiple-of-8 k/n tails.
        /// (The scalar backend is the reference; the tiled-vs-naive
        /// proptests pin scalar itself.)
        #[test]
        fn simd_backends_match_scalar_exactly(
            m in 0usize..35,
            k in 0usize..70,
            n in 0usize..70,
            raw_a in proptest::collection::vec(-10.0f32..10.0, 35 * 70),
            raw_b in proptest::collection::vec(-10.0f32..10.0, 70 * 70),
        ) {
            let a = Matrix::from_vec(m, k, raw_a[..m * k].to_vec());
            let bt = Matrix::from_vec(n, k, raw_b[..n * k].to_vec());
            let b = Matrix::from_vec(k, n, raw_b[..k * n].to_vec());
            let mut nt_ref = Matrix::zeros(m, n);
            a.matmul_nt_into_with_backend(&bt, &mut nt_ref, 1, KernelBackend::Scalar);
            let mut nn_ref = Matrix::zeros(m, n);
            a.matmul_into_with_backend(&b, &mut nn_ref, 1, KernelBackend::Scalar);
            let mut mv_ref = vec![0.0f32; n];
            if m > 0 {
                bt.matvec_into_with_backend(a.row(0), &mut mv_ref, KernelBackend::Scalar);
            }
            for backend in [KernelBackend::Sse2, KernelBackend::Avx2] {
                if !backend.is_available() {
                    continue;
                }
                let mut out = Matrix::zeros(m, n);
                a.matmul_nt_into_with_backend(&bt, &mut out, 1, backend);
                prop_assert_eq!(&out, &nt_ref, "nt {}", backend);
                a.matmul_into_with_backend(&b, &mut out, 1, backend);
                prop_assert_eq!(&out, &nn_ref, "nn {}", backend);
                if m > 0 {
                    let mut mv = vec![0.0f32; n];
                    bt.matvec_into_with_backend(a.row(0), &mut mv, backend);
                    prop_assert_eq!(&mv, &mv_ref, "matvec {}", backend);
                }
            }
        }

        /// The strided attention kernels are byte-identical across
        /// backends too, for arbitrary slab shapes and selections.
        #[test]
        fn simd_strided_kernels_match_scalar_exactly(
            n_records in 0usize..20,
            stride in 1usize..12,
            n_sel in 0usize..30,
            sel_seed in 0usize..1000,
            raw in proptest::collection::vec(-4.0f32..4.0, 20 * 12),
            x in proptest::collection::vec(-4.0f32..4.0, 12),
            w in proptest::collection::vec(-2.0f32..2.0, 30),
        ) {
            let offset = sel_seed % stride;
            let width = (stride - offset).min(1 + sel_seed % 8);
            let slab = &raw[..n_records * stride];
            let rows = StridedRows::new(slab, stride, offset, width);
            let idx: Vec<usize> = if n_records == 0 {
                Vec::new()
            } else {
                (0..n_sel).map(|i| (i * 31 + sel_seed) % n_records).collect()
            };
            let mut mv_ref = vec![0.0f32; idx.len()];
            matvec_strided_into_with_backend(
                &x[..width], &rows, &idx, &mut mv_ref, KernelBackend::Scalar,
            );
            let mut av_ref = vec![0.0f32; width];
            weighted_rows_into_with_backend(
                &w[..idx.len()], &rows, &idx, &mut av_ref, KernelBackend::Scalar,
            );
            for backend in [KernelBackend::Sse2, KernelBackend::Avx2] {
                if !backend.is_available() {
                    continue;
                }
                let mut mv = vec![1.0f32; idx.len()];
                matvec_strided_into_with_backend(&x[..width], &rows, &idx, &mut mv, backend);
                prop_assert_eq!(&mv, &mv_ref, "scores {}", backend);
                let mut av = vec![-1.0f32; width];
                weighted_rows_into_with_backend(&w[..idx.len()], &rows, &idx, &mut av, backend);
                prop_assert_eq!(&av, &av_ref, "av {}", backend);
            }
        }

        /// Tiled and threaded A·Bᵀ are bit-identical to the naive kernel
        /// on arbitrary shapes, including empty and 1-row matrices.
        #[test]
        fn tiled_matmul_nt_matches_naive_exactly(
            m in 0usize..35,
            k in 0usize..70,
            n in 0usize..70,
            threads in 1usize..5,
            raw_a in proptest::collection::vec(-10.0f32..10.0, 35 * 70),
            raw_b in proptest::collection::vec(-10.0f32..10.0, 70 * 70),
        ) {
            let a = Matrix::from_vec(m, k, raw_a[..m * k].to_vec());
            let b = Matrix::from_vec(n, k, raw_b[..n * k].to_vec());
            let reference = a.matmul_nt_naive(&b);
            prop_assert_eq!(&a.matmul_nt(&b), &reference);
            let mut out = Matrix::zeros(m, n);
            a.matmul_nt_into_threaded(&b, &mut out, threads);
            prop_assert_eq!(&out, &reference);
        }
    }
}
