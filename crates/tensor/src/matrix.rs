//! Row-major `f32` matrices and the handful of BLAS-like kernels the native
//! MoE path needs.

use std::fmt;

/// A dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use klotski_tensor::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// `self · rhs` (new allocation).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `out = self · rhs`, reusing `out`'s buffer (ikj loop order).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "output rows mismatch");
        assert_eq!(out.cols, rhs.cols, "output cols mismatch");
        out.data.fill(0.0);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let o_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self · rhsᵀ` (new allocation) — the natural layout for weight
    /// matrices stored as `[out_features, in_features]`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transpose (new allocation).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f32) {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum absolute element difference versus `rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_nt_equals_matmul_of_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5 - 2.0);
        let w = Matrix::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 0.25);
        let direct = a.matmul_nt(&w);
        let via_t = a.matmul(&w.transpose());
        assert!(direct.max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| (r + 2 * c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        a.add_scaled(&b, 0.5);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0), 1.5);
    }

    #[test]
    fn rows_are_contiguous_views() {
        let mut a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
        a.row_mut(0)[2] = 9.0;
        assert_eq!(a.get(0, 2), 9.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 5]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    proptest! {
        /// (A·B)·C == A·(B·C) within float tolerance.
        #[test]
        fn matmul_is_associative(
            a in small_matrix(3, 4),
            b in small_matrix(4, 2),
            c in small_matrix(2, 5),
        ) {
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!(left.max_abs_diff(&right) < 1e-2);
        }

        /// Transposition reverses multiplication order: (A·B)ᵀ == Bᵀ·Aᵀ.
        #[test]
        fn transpose_reverses_product(
            a in small_matrix(3, 4),
            b in small_matrix(4, 2),
        ) {
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
        }
    }
}
