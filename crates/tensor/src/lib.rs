//! # klotski-tensor — dense kernels and quantization
//!
//! The minimal numerical substrate for the native (really-executed) MoE
//! path: row-major `f32` [`matrix::Matrix`] with matmul variants, the
//! transformer activation/normalization kernels in [`ops`], HQQ-style
//! group-wise quantization in [`quant`], and reproducible initialization in
//! [`init`].
//!
//! ```
//! use klotski_tensor::init::xavier_matrix;
//! use klotski_tensor::quant::{QuantConfig, QuantizedMatrix};
//!
//! let w = xavier_matrix(16, 64, 7);
//! let q = QuantizedMatrix::quantize(&w, QuantConfig::paper_default());
//! assert!(w.max_abs_diff(&q.dequantize()) <= q.error_bound());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod init;
pub mod matrix;
pub mod ops;
pub mod quant;
pub mod simd;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::init::{norm_weight, seeded_matrix, sub_seed, xavier_matrix};
    pub use crate::matrix::Matrix;
    pub use crate::ops::{argmax, relu, rmsnorm_inplace, silu, softmax_inplace, top_k};
    pub use crate::quant::{QuantConfig, QuantizedMatrix};
    pub use crate::simd::{active_backend, detected_backend, KernelBackend};
}
