//! FlexGen: zig-zag block scheduling with whole-layer prefetch.
//!
//! FlexGen pioneered the multi-batch weight-sharing idea Klotski builds on
//! (the paper's §5 is "designed based on zig-zag block schedule \[34\]"), so
//! it shares the same DAG machinery: multi-batch, KV offloaded to DRAM,
//! pinned transfers with double-buffered lookahead. What it *lacks* is
//! expert awareness — the entire MoE layer is prefetched whether or not
//! experts are selected, and the expert phase is partitioned batch-major,
//! exactly the two deficiencies the paper's Fig. 4(b) strawman exhibits.
//!
//! It is therefore expressed precisely as a [`KlotskiEngine`] configuration
//! with `hot_expert_prefetch = false` (whole-layer transfers) and
//! `batch_major_experts = true` (zig-zag block order).

use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, EngineError, Scenario};

/// The FlexGen baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlexGen;

impl FlexGen {
    /// The engine configuration FlexGen corresponds to.
    pub fn config() -> KlotskiConfig {
        KlotskiConfig {
            multi_batch: true,
            hot_expert_prefetch: false,
            reorder_experts: false,
            batch_major_experts: true,
            ..KlotskiConfig::default()
        }
    }
}

impl Engine for FlexGen {
    fn name(&self) -> String {
        "FlexGen".into()
    }

    fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
        let mut report = KlotskiEngine::new(Self::config()).run(sc)?;
        report.engine = self.name();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;
    use klotski_model::workload::Workload;

    fn scenario(bs: u32, n: u32) -> Scenario {
        Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(bs, n, 128, 3),
            5,
        )
    }

    #[test]
    fn flexgen_completes_and_is_named() {
        let sc = scenario(4, 4);
        let r = FlexGen.run(&sc).unwrap();
        assert!(r.succeeded(), "{:?}", r.oom);
        assert_eq!(r.engine, "FlexGen");
        assert!(r.throughput_tps() > 0.0);
    }

    #[test]
    fn klotski_beats_flexgen() {
        // The headline comparison: expert-aware scheduling wins, most
        // visibly at small batch sizes where activation sparsity matters.
        let sc = scenario(4, 6);
        let flexgen = FlexGen.run(&sc).unwrap();
        let klotski = KlotskiEngine::new(KlotskiConfig::full()).run(&sc).unwrap();
        assert!(
            klotski.throughput_tps() > flexgen.throughput_tps(),
            "Klotski {} ≤ FlexGen {}",
            klotski.throughput_tps(),
            flexgen.throughput_tps()
        );
    }

    #[test]
    fn flexgen_transfers_inactive_experts() {
        // With batch 4 × top-2, some experts receive no tokens at some
        // layers — FlexGen pays their I/O anyway, visible as a strictly
        // longer total H2D busy time than Klotski's.
        let sc = scenario(4, 4);
        let flexgen = FlexGen.run(&sc).unwrap();
        let klotski = KlotskiEngine::new(KlotskiConfig::full()).run(&sc).unwrap();
        assert!(
            flexgen.total_time > klotski.total_time,
            "whole-layer prefetch should cost wall-clock time"
        );
    }
}
