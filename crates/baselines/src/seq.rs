//! Sequential whole-layer offloading engines: Hugging Face **Accelerate**
//! and DeepSpeed-**FastGen**.
//!
//! Both process one batch at a time and move whole layers; they differ in
//! how the movement happens:
//!
//! * **Accelerate** attaches device-map hooks that synchronously `.to()`
//!   each module from *pageable* host memory right before its forward call
//!   — no overlap, unpinned bandwidth, per-module dispatch overhead. Its
//!   one mercy on MoE models: expert submodules load lazily, so only
//!   gate-selected experts transfer.
//! * **FastGen** (ZeRO-Inference lineage) prefetches the *entire* next
//!   layer — all experts, selected or not — from pinned buffers while the
//!   current layer computes, overlapping I/O with (single-batch) compute.
//!
//! Neither offloads the KV cache: it stays in VRAM, like the paper's runs.

use klotski_core::driver::{build_report, drain, StepKind, TraceView};
use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, EngineError, Scenario};
use klotski_model::cost::CostModel;
use klotski_sim::prelude::*;

use crate::common::{dram_expert_cutoff, tokens_per_batch};

/// Extra per-module host-side dispatch overhead of Accelerate's hook path.
const ACCELERATE_MODULE_OVERHEAD: SimDuration = SimDuration::from_millis(2);

/// Hugging Face Accelerate device-map offloading.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accelerate;

/// DeepSpeed-FastGen (ZeRO-Inference style) offloading.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastGen;

impl Engine for Accelerate {
    fn name(&self) -> String {
        "Accelerate".into()
    }

    fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
        run_seq(sc, self.name(), false)
    }
}

impl Engine for FastGen {
    fn name(&self) -> String {
        "FastGen".into()
    }

    fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
        run_seq(sc, self.name(), true)
    }
}

fn run_seq(sc: &Scenario, name: String, overlap: bool) -> Result<InferenceReport, EngineError> {
    if sc.spec.is_moe() && sc.trace.is_none() {
        return Err(EngineError::InvalidConfig(
            "MoE scenario without a gating trace".into(),
        ));
    }
    let cost = sc.cost_model();
    let wl = sc.workload;
    let spec = &sc.spec;

    let mut sim = Simulator::new(sc.hw.tier_capacities());
    // Embeddings + activation workspace stay in VRAM; weights in DRAM.
    let act_ws = 4 * spec.hidden_bytes(wl.batch_size as u64 * wl.prompt_len as u64);
    let static_vram = spec.embed_bytes() + act_ws + 800_000_000;
    if sim.pool_mut(Tier::Vram).alloc(static_vram).is_err() {
        let stats = klotski_core::driver::RunStats::default();
        return Ok(build_report(
            name,
            spec,
            &wl,
            &sim,
            &stats,
            Some("activation workspace exceeds VRAM".into()),
        ));
    }
    let dram_cap = sim.pool(Tier::Dram).capacity();
    sim.pool_mut(Tier::Dram)
        .alloc(spec.total_bytes().min(dram_cap))
        .expect("model weights fit DRAM in both environments");

    let view = sc.trace.as_ref().map(TraceView::new);
    let disk_cutoff = dram_expert_cutoff(spec, sc.hw.dram_bytes);
    let mut b = SeqBuilder {
        sim: &mut sim,
        cost: &cost,
        sc,
        view,
        overlap,
        disk_cutoff,
        chain: None,
        layer_ends: Vec::new(),
    };
    for g in 0..wl.num_batches {
        b.submit_batch(g);
    }

    let (stats, oom) = drain(&mut sim, false)?;
    Ok(build_report(name, spec, &wl, &sim, &stats, oom))
}

/// One (step, layer) submission of one batch: the identifiers and sizes
/// [`SeqBuilder::submit_layer`] needs, bundled so the call stays within
/// clippy's argument budget.
#[derive(Debug, Clone, Copy)]
struct LayerSubmission {
    step: StepKind,
    /// Layer index.
    l: u32,
    /// First sequence of the batch (inclusive).
    s0: u32,
    /// Last sequence of the batch (exclusive).
    s1: u32,
    /// The batch's resident KV bytes (claimed once, freed at batch end).
    kv_bytes: u64,
}

struct SeqBuilder<'a> {
    sim: &'a mut Simulator,
    cost: &'a CostModel,
    sc: &'a Scenario,
    view: Option<TraceView<'a>>,
    overlap: bool,
    /// First layer whose experts spill to disk (no tiered placement: the
    /// fetch path pays the disk read for those layers).
    disk_cutoff: u32,
    /// The tail of the synchronous chain (Accelerate) or the last compute
    /// (FastGen's pacing anchor).
    chain: Option<TaskId>,
    layer_ends: Vec<TaskId>,
}

impl<'a> SeqBuilder<'a> {
    fn h2d(&self, bytes: u64) -> SimDuration {
        if self.overlap {
            self.cost.h2d_time(bytes)
        } else {
            self.cost.h2d_time_unpinned(bytes) + ACCELERATE_MODULE_OVERHEAD
        }
    }

    /// Transfer throttle for the overlapped engine (double buffering).
    fn throttle(&self) -> Option<TaskId> {
        self.layer_ends
            .len()
            .checked_sub(2)
            .map(|i| self.layer_ends[i])
    }

    fn submit_batch(&mut self, batch: u32) {
        let wl = self.sc.workload;
        let s0 = batch * wl.batch_size;
        let s1 = s0 + wl.batch_size;
        let spec = &self.sc.spec;
        let kv_bytes = spec.kv_bytes_total(wl.batch_size as u64, wl.max_context());

        let mut kv_allocated = false;
        for step in StepKind::all(wl.gen_len) {
            for l in 0..spec.n_layers {
                let layer = LayerSubmission {
                    step,
                    l,
                    s0,
                    s1,
                    kv_bytes,
                };
                self.submit_layer(&layer, &mut kv_allocated);
            }
        }
        // Release this batch's resident KV on the final layer end.
        if let Some(&last) = self.layer_ends.last() {
            let _ = last; // freed via the layer-end task's memory effect below
        }
    }

    fn submit_layer(&mut self, layer: &LayerSubmission, kv_allocated: &mut bool) {
        let LayerSubmission {
            step,
            l,
            s0,
            s1,
            kv_bytes,
        } = *layer;
        let spec = &self.sc.spec;
        let cost = self.cost;
        let wl = self.sc.workload;
        let step_idx = step.index();
        let is_moe = spec.is_moe_layer(l);
        let bs = wl.batch_size as u64;
        let ctx = step.context(wl.prompt_len);

        // --- Layer weight transfer(s).
        let mut attn_bytes = spec.attn_bytes();
        if !is_moe {
            attn_bytes += spec.dense_ffn_bytes();
        }
        let mut load = TaskSpec::new(
            Resource::LinkH2d,
            self.h2d(attn_bytes),
            TaskMeta::of(OpClass::WeightTransfer)
                .layer(l)
                .step(step_idx),
        )
        .alloc_on_start(Tier::Vram, attn_bytes);
        // The first task of a batch also claims its resident KV region.
        if !*kv_allocated {
            load = load.alloc_on_start(Tier::Vram, kv_bytes);
            *kv_allocated = true;
        }
        if self.overlap {
            if let Some(t) = self.throttle() {
                load = load.after(t);
            }
        } else if let Some(c) = self.chain {
            load = load.after(c);
        }
        let load = self.sim.submit(load);
        if !self.overlap {
            self.chain = Some(load);
        }

        // --- Attention compute.
        let attn_dur = match step {
            StepKind::Prefill => cost.attention_time(bs, wl.prompt_len as u64, ctx / 2 + 1),
            StepKind::Decode(_) => cost.attention_time(bs, 1, ctx),
        };
        let mut attn = TaskSpec::new(
            Resource::GpuCompute,
            attn_dur,
            TaskMeta::of(OpClass::AttentionCompute)
                .layer(l)
                .step(step_idx),
        )
        .after(load);
        if let Some(c) = self.chain {
            attn = attn.after(c);
        }
        let attn = self.sim.submit(attn);
        self.chain = Some(attn);

        let mut computes = vec![attn];
        let mut freed = attn_bytes;

        if is_moe {
            let m = spec.moe_index(l).expect("moe layer");
            let view = self.view.as_ref().expect("moe run has a trace");
            let counts = view.expert_tokens(step, m, s0, s1);

            // Gate load + compute.
            let mut gate_load = TaskSpec::new(
                Resource::LinkH2d,
                self.h2d(spec.gate_bytes()),
                TaskMeta::of(OpClass::GateTransfer).layer(l).step(step_idx),
            )
            .alloc_on_start(Tier::Vram, spec.gate_bytes());
            if self.overlap {
                if let Some(t) = self.throttle() {
                    gate_load = gate_load.after(t);
                }
            } else {
                gate_load = gate_load.after(attn);
            }
            let gate_load = self.sim.submit(gate_load);
            let gate = self.sim.submit(
                TaskSpec::new(
                    Resource::GpuCompute,
                    cost.gate_time(tokens_per_batch(&wl, step)),
                    TaskMeta::of(OpClass::GateCompute).layer(l).step(step_idx),
                )
                .after(attn)
                .after(gate_load),
            );
            self.chain = Some(gate);
            computes.push(gate);
            freed += spec.gate_bytes();

            // Experts.
            let to_load: Vec<u16> = if self.overlap {
                // FastGen prefetches the whole MoE layer, selected or not.
                (0..spec.n_experts as u16).collect()
            } else {
                // Accelerate's lazy hooks load only the selected experts.
                counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(e, _)| e as u16)
                    .collect()
            };
            let disk_penalty = if l >= self.disk_cutoff {
                cost.disk_time(spec.expert_bytes())
            } else {
                SimDuration::ZERO
            };
            let mut transfers: Vec<TaskId> = Vec::with_capacity(to_load.len());
            for &e in &to_load {
                let mut t = TaskSpec::new(
                    Resource::LinkH2d,
                    self.h2d(spec.expert_bytes()) + disk_penalty,
                    TaskMeta::of(OpClass::ExpertTransfer)
                        .layer(l)
                        .expert(e as u32)
                        .step(step_idx),
                )
                .alloc_on_start(Tier::Vram, spec.expert_bytes());
                if self.overlap {
                    if let Some(thr) = self.throttle() {
                        t = t.after(thr);
                    }
                } else {
                    // Synchronous: the hook fires after the gate (and after
                    // the previous expert finished computing).
                    t = t.after(self.chain.expect("chain populated"));
                }
                let t = self.sim.submit(t);
                transfers.push(t);

                let tokens = counts[e as usize] as u64;
                if tokens > 0 {
                    let mut c = TaskSpec::new(
                        Resource::GpuCompute,
                        cost.expert_time(tokens),
                        TaskMeta::of(OpClass::ExpertCompute)
                            .layer(l)
                            .expert(e as u32)
                            .step(step_idx),
                    )
                    .after(gate)
                    .after(t);
                    if self.overlap {
                        // FastGen's per-module fetch buffer is recycled as
                        // soon as the module's forward finishes.
                        c = c.free_on_end(Tier::Vram, spec.expert_bytes());
                    } else {
                        freed += spec.expert_bytes();
                    }
                    if let Some(c0) = self.chain {
                        c = c.after(c0);
                    }
                    let c = self.sim.submit(c);
                    self.chain = Some(c);
                    computes.push(c);
                } else {
                    // Inactive expert: its buffer releases at layer end.
                    freed += spec.expert_bytes();
                }
            }
            // Transfers of inactive experts have no dependent compute, but
            // their bytes are freed at the layer end: it must wait for them.
            computes.extend(transfers);
            computes.push(gate_load);
        } else {
            // Dense FFN (weights came with the layer transfer).
            let ffn = self.sim.submit(
                TaskSpec::new(
                    Resource::GpuCompute,
                    cost.dense_ffn_time(tokens_per_batch(&wl, step)),
                    TaskMeta::of(OpClass::DenseCompute).layer(l).step(step_idx),
                )
                .after(attn),
            );
            self.chain = Some(ffn);
            computes.push(ffn);
        }

        // --- Layer end: free the layer's weights (and, on the very last
        // layer of a batch, its KV region).
        let is_last = step_idx == wl.gen_len.saturating_sub(1) && l == spec.n_layers - 1;
        let mut end = TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::ZERO,
            TaskMeta::of(OpClass::Offload).layer(l).step(step_idx),
        )
        .after_all(computes.iter().copied())
        .free_on_end(Tier::Vram, freed);
        if is_last {
            end = end.free_on_end(Tier::Vram, kv_bytes);
        }
        let end = self.sim.submit(end);
        self.layer_ends.push(end);
        self.chain = Some(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;
    use klotski_model::workload::Workload;

    fn scenario(bs: u32, n: u32) -> Scenario {
        Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(bs, n, 128, 3),
            5,
        )
    }

    #[test]
    fn both_engines_complete() {
        let sc = scenario(4, 2);
        let a = Accelerate.run(&sc).unwrap();
        let f = FastGen.run(&sc).unwrap();
        assert!(a.succeeded(), "{:?}", a.oom);
        assert!(f.succeeded(), "{:?}", f.oom);
        assert_eq!(a.generated_tokens, f.generated_tokens);
    }

    #[test]
    fn fastgen_beats_accelerate() {
        // Pinned + overlapped must beat pageable + synchronous.
        let sc = scenario(4, 2);
        let a = Accelerate.run(&sc).unwrap();
        let f = FastGen.run(&sc).unwrap();
        assert!(
            f.throughput_tps() > a.throughput_tps() * 1.5,
            "FastGen {} vs Accelerate {}",
            f.throughput_tps(),
            a.throughput_tps()
        );
    }

    #[test]
    fn accelerate_has_no_overlap_bubbles_accounting() {
        // In a fully synchronous chain the GPU idles during every transfer:
        // the bubble fraction should be large.
        let sc = scenario(4, 1);
        let a = Accelerate.run(&sc).unwrap();
        assert!(
            a.bubble_fraction() > 0.5,
            "sync engine should stall most of the time, got {}",
            a.bubble_fraction()
        );
    }

    #[test]
    fn dense_models_are_supported() {
        let sc = Scenario::generate(
            ModelSpec::opt_1_3b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(4, 2, 128, 3),
            5,
        );
        let a = Accelerate.run(&sc).unwrap();
        let f = FastGen.run(&sc).unwrap();
        assert!(a.succeeded() && f.succeeded());
        assert!(f.throughput_tps() > a.throughput_tps());
    }

    #[test]
    fn vram_is_conserved() {
        let sc = scenario(4, 2);
        let a = Accelerate.run(&sc).unwrap();
        // All transient weights freed; what remains at peak is bounded by
        // static + KV + one layer's worth of weights (×2 for slack).
        assert!(a.peak_vram < 16_000_000_000, "peak {}", a.peak_vram);
    }
}
