//! Shared accounting for the baseline engines.

use klotski_core::driver::StepKind;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;

/// VRAM accounting for engines that offload **only experts** and keep
/// attention weights + KV cache resident on the GPU (MoE-Infinity and
/// Fiddler, §9.2 of the paper: "Fiddler and MoE-Infinity only support the
/// offloading of experts. Consequently, the extensive KV cache may result
/// in OOM errors when the batch is large").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentFootprint {
    /// All layers' attention (+norm, + dense FFN for non-MoE blocks) weights.
    pub attn_weights: u64,
    /// Embedding + LM head.
    pub embed: u64,
    /// KV cache of one batch at maximum context, all layers.
    pub kv: u64,
    /// Peak activation workspace (prefill: hidden states + eager attention
    /// score matrices).
    pub activations: u64,
    /// Expert buffer reserve: one full layer of experts, so a whole
    /// activated set can be served at once.
    pub expert_reserve: u64,
    /// Fixed runtime overhead (CUDA context, allocator slack).
    pub runtime: u64,
}

impl ResidentFootprint {
    /// Computes the footprint for a single batch of `wl.batch_size`.
    pub fn for_single_batch(spec: &ModelSpec, wl: &Workload) -> Self {
        let bs = wl.batch_size as u64;
        let prompt = wl.prompt_len as u64;
        let attn_weights: u64 = (0..spec.n_layers)
            .map(|l| {
                let mut b = spec.attn_bytes();
                if !spec.is_moe_layer(l) {
                    b += spec.dense_ffn_bytes();
                }
                if spec.is_moe_layer(l) {
                    b += spec.gate_bytes();
                }
                b
            })
            .sum();
        let hidden = spec.hidden_bytes(bs * prompt);
        let scores = bs * spec.n_heads * prompt * prompt * 2;
        ResidentFootprint {
            attn_weights,
            embed: spec.embed_bytes(),
            kv: spec.kv_bytes_total(bs, wl.max_context()),
            activations: 8 * hidden + 3 * scores,
            expert_reserve: spec.n_experts.max(1) as u64 * spec.expert_bytes(),
            runtime: 800_000_000,
        }
    }

    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.attn_weights
            + self.embed
            + self.kv
            + self.activations
            + self.expert_reserve
            + self.runtime
    }

    /// Spare VRAM left for an expert cache, if the footprint fits.
    pub fn spare(&self, vram: u64) -> Option<u64> {
        vram.checked_sub(self.total())
    }

    /// OOM message when the footprint does not fit `vram`.
    pub fn oom_message(&self, vram: u64) -> Option<String> {
        if self.total() <= vram {
            return None;
        }
        Some(format!(
            "resident footprint {:.1} GB (weights {:.1} + KV {:.1} + activations {:.1} \
             + expert buffers {:.1}) exceeds VRAM {:.1} GB",
            self.total() as f64 / 1e9,
            (self.attn_weights + self.embed) as f64 / 1e9,
            self.kv as f64 / 1e9,
            self.activations as f64 / 1e9,
            self.expert_reserve as f64 / 1e9,
            vram as f64 / 1e9,
        ))
    }
}

/// First block whose experts no longer fit in DRAM (everything from this
/// layer up lives on disk). Engines without tiered placement (MoE-Infinity,
/// Fiddler) pay the disk-read path for those experts — this is what makes
/// their Mixtral-8×22B Environment-1 numbers collapse in the paper.
pub fn dram_expert_cutoff(spec: &ModelSpec, dram_bytes: u64) -> u32 {
    let budget = (dram_bytes as f64 * 0.92) as u64;
    let non_expert: u64 = (0..spec.n_layers)
        .map(|l| {
            let mut b = spec.attn_bytes();
            if spec.is_moe_layer(l) {
                b += spec.gate_bytes();
            } else {
                b += spec.dense_ffn_bytes();
            }
            b
        })
        .sum::<u64>()
        + spec.embed_bytes();
    let mut left = budget.saturating_sub(non_expert);
    for l in 0..spec.n_layers {
        let bytes = if spec.is_moe_layer(l) {
            spec.n_experts as u64 * spec.expert_bytes()
        } else {
            0
        };
        if bytes > left {
            return l;
        }
        left -= bytes;
    }
    spec.n_layers
}

/// Tokens processed per batch at `step` (prompt length for prefill, one per
/// sequence for decode).
pub fn tokens_per_batch(wl: &Workload, step: StepKind) -> u64 {
    match step {
        StepKind::Prefill => wl.batch_size as u64 * wl.prompt_len as u64,
        StepKind::Decode(_) => wl.batch_size as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_scales_with_batch_size() {
        let spec = ModelSpec::mixtral_8x22b();
        let small = ResidentFootprint::for_single_batch(&spec, &Workload::paper_default(16));
        let large = ResidentFootprint::for_single_batch(&spec, &Workload::paper_default(64));
        assert!(large.kv > small.kv * 3);
        assert!(large.activations > small.activations);
        assert_eq!(large.attn_weights, small.attn_weights);
    }

    #[test]
    fn mixtral_8x22b_env1_ooms_at_batch_32_but_not_16() {
        // Paper §9.2: Fiddler / MoE-Infinity are limited to batch ≤ 16 for
        // Mixtral-8×22B on the 24 GB 3090.
        let spec = ModelSpec::mixtral_8x22b();
        let vram = 24_000_000_000;
        let ok = ResidentFootprint::for_single_batch(&spec, &Workload::paper_default(16));
        assert!(ok.oom_message(vram).is_none(), "{:?}", ok.oom_message(vram));
        let bad = ResidentFootprint::for_single_batch(&spec, &Workload::paper_default(32));
        assert!(bad.oom_message(vram).is_some(), "{bad:?}");
    }

    #[test]
    fn mixtral_8x7b_env1_runs_through_batch_64() {
        // The paper evaluates these systems on 8×7B up to batch 64.
        let spec = ModelSpec::mixtral_8x7b();
        let f = ResidentFootprint::for_single_batch(&spec, &Workload::paper_default(64));
        assert!(f.oom_message(24_000_000_000).is_none(), "{f:?}");
    }

    #[test]
    fn dram_cutoff_reflects_capacity() {
        let spec = ModelSpec::mixtral_8x7b();
        // 93 GB model in 256 GB DRAM: everything fits.
        assert_eq!(dram_expert_cutoff(&spec, 256_000_000_000), 32);
        let big = ModelSpec::mixtral_8x22b();
        // 282 GB model in 256 GB DRAM: tail layers spill.
        let cutoff = dram_expert_cutoff(&big, 256_000_000_000);
        assert!(cutoff < 56, "cutoff = {cutoff}");
        assert!(cutoff > 30, "cutoff = {cutoff}");
        // Env 2's 800 GB holds everything.
        assert_eq!(dram_expert_cutoff(&big, 800_000_000_000), 56);
    }

    #[test]
    fn tokens_per_batch_by_phase() {
        let wl = Workload::paper_default(8);
        assert_eq!(tokens_per_batch(&wl, StepKind::Prefill), 8 * 512);
        assert_eq!(tokens_per_batch(&wl, StepKind::Decode(3)), 8);
    }
}
