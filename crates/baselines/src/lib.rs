//! # klotski-baselines — the five comparator engines
//!
//! Faithful policy re-implementations of the systems the Klotski paper
//! compares against (§9.1), all running over the same simulated substrate
//! and cost model as Klotski itself so that every difference in the
//! reports is a difference in *scheduling policy*:
//!
//! * [`seq::Accelerate`] — synchronous per-module device-map offloading
//!   from pageable memory (no overlap).
//! * [`seq::FastGen`] — DeepSpeed-FastGen-style pinned whole-layer
//!   prefetch, single batch.
//! * [`flexgen::FlexGen`] — zig-zag multi-batch with whole-MoE-layer
//!   prefetch and batch-major expert compute.
//! * [`moe_infinity::MoeInfinity`] — activation-aware expert prefetch +
//!   LRU expert cache, experts-only offloading.
//! * [`fiddler::Fiddler`] — CPU-GPU orchestration: cold experts compute on
//!   the CPU when that beats moving them.
//!
//! ```
//! use klotski_baselines::all_engines;
//!
//! let engines = all_engines();
//! assert_eq!(engines.len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod fiddler;
pub mod flexgen;
pub mod moe_infinity;
pub mod seq;

use klotski_core::scenario::Engine;

pub use fiddler::Fiddler;
pub use flexgen::FlexGen;
pub use moe_infinity::MoeInfinity;
pub use seq::{Accelerate, FastGen};

/// All five baselines, in the paper's presentation order.
pub fn all_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(Accelerate),
        Box::new(FastGen),
        Box::new(FlexGen),
        Box::new(MoeInfinity),
        Box::new(Fiddler),
    ]
}

#[cfg(test)]
mod proptests {
    use super::*;
    use klotski_core::scenario::Scenario;
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;
    use klotski_model::workload::Workload;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        /// Every baseline drains every random (feasible) scenario without
        /// internal errors, with a consistent report.
        #[test]
        fn baselines_complete_random_scenarios(
            bs in 1u32..10,
            n in 1u32..4,
            prompt in 16u32..96,
            gen in 2u32..5,
            seed in 0u64..30,
        ) {
            let wl = Workload::new(bs, n, prompt, gen);
            let sc = Scenario::generate(
                ModelSpec::mixtral_8x7b(),
                HardwareSpec::env1_rtx3090(),
                wl,
                seed,
            );
            for engine in all_engines() {
                let r = engine.run(&sc).expect("no internal errors");
                prop_assert!(r.succeeded(), "{}: {:?}", r.engine, r.oom);
                prop_assert_eq!(r.generated_tokens, wl.total_generated());
                prop_assert!(r.peak_vram <= sc.hw.vram_bytes, "{}", r.engine);
                prop_assert!(r.gpu_busy <= r.total_time, "{}", r.engine);
            }
        }
    }
}
