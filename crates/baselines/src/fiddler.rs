//! Fiddler: CPU-GPU orchestration for MoE inference.
//!
//! Fiddler's insight: at decode-time token counts, *computing* a cold
//! expert on the CPU (where its weights already live) can beat *moving*
//! 100s of MB over PCIe to compute it on the GPU. The engine keeps
//! attention weights, KV cache and the most popular experts resident in
//! VRAM; per activated expert it chooses `min(cpu_compute,
//! transfer + gpu_compute)`, running CPU experts concurrently with GPU
//! work. Prefill — with thousands of tokens per expert — always takes the
//! GPU path (CPU GEMM would be minutes per layer).

use std::collections::BTreeSet;

use klotski_core::driver::{build_report, drain, StepKind, TraceView};
use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, EngineError, Scenario};
use klotski_sim::prelude::*;

use crate::common::{dram_expert_cutoff, ResidentFootprint};

/// The Fiddler baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fiddler;

impl Engine for Fiddler {
    fn name(&self) -> String {
        "Fiddler".into()
    }

    fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
        if !sc.spec.is_moe() {
            return Err(EngineError::InvalidConfig(
                "Fiddler serves MoE models only".into(),
            ));
        }
        let Some(trace) = sc.trace.as_ref() else {
            return Err(EngineError::InvalidConfig(
                "MoE scenario without a gating trace".into(),
            ));
        };
        let cost = sc.cost_model();
        let wl = sc.workload;
        let spec = &sc.spec;
        let mut sim = Simulator::new(sc.hw.tier_capacities());

        let footprint = ResidentFootprint::for_single_batch(spec, &wl);
        if let Some(msg) = footprint.oom_message(sc.hw.vram_bytes) {
            let stats = klotski_core::driver::RunStats::default();
            return Ok(build_report(
                self.name(),
                spec,
                &wl,
                &sim,
                &stats,
                Some(msg),
            ));
        }

        // Initial placement: fill spare VRAM with the globally most popular
        // experts (by warm-up statistics).
        let spare = footprint.spare(sc.hw.vram_bytes).expect("checked above");
        let resident_slots = (spare / 10 * 9 / spec.expert_bytes().max(1)) as usize;
        let resident: BTreeSet<(u32, u16)> = match &sc.base_gating {
            Some(base) => {
                let mut scored: Vec<((u32, u16), f64)> = Vec::new();
                for m in 0..base.n_moe_layers() {
                    let layer = moe_to_block(spec, m);
                    for (e, &p) in base.popularity(m).iter().enumerate() {
                        scored.push(((layer, e as u16), p));
                    }
                }
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                scored
                    .into_iter()
                    .take(resident_slots)
                    .map(|(k, _)| k)
                    .collect()
            }
            None => BTreeSet::new(),
        };
        let static_vram = footprint.total() + resident.len() as u64 * spec.expert_bytes();
        sim.pool_mut(Tier::Vram)
            .alloc(static_vram.min(sc.hw.vram_bytes))
            .expect("footprint checked against VRAM");
        let dram_cap = sim.pool(Tier::Dram).capacity();
        sim.pool_mut(Tier::Dram)
            .alloc(spec.total_bytes().min(dram_cap))
            .expect("weights fit DRAM");

        let view = TraceView::new(trace);
        let mut carry: Option<TaskId> = None;
        let mut layer_ends: Vec<TaskId> = Vec::new();

        // When the model exceeds DRAM, tail-layer experts live on disk:
        // both the CPU path (weights must reach DRAM first) and the GPU
        // path (disk → DRAM → VRAM) pay the disk read.
        let disk_cutoff = dram_expert_cutoff(spec, sc.hw.dram_bytes);

        for batch in 0..wl.num_batches {
            let s0 = batch * wl.batch_size;
            let s1 = s0 + wl.batch_size;
            for step in StepKind::all(wl.gen_len) {
                for l in 0..spec.n_layers {
                    let step_idx = step.index();
                    let bs = wl.batch_size as u64;
                    let ctx = step.context(wl.prompt_len);

                    let attn_dur = match step {
                        StepKind::Prefill => {
                            cost.attention_time(bs, wl.prompt_len as u64, ctx / 2 + 1)
                        }
                        StepKind::Decode(_) => cost.attention_time(bs, 1, ctx),
                    };
                    let mut attn = TaskSpec::new(
                        Resource::GpuCompute,
                        attn_dur,
                        TaskMeta::of(OpClass::AttentionCompute)
                            .layer(l)
                            .step(step_idx),
                    );
                    if let Some(c) = carry {
                        attn = attn.after(c);
                    }
                    let attn = sim.submit(attn);
                    let mut computes = vec![attn];

                    if let Some(m) = spec.moe_index(l) {
                        let gate_tokens = match step {
                            StepKind::Prefill => bs * wl.prompt_len as u64,
                            StepKind::Decode(_) => bs,
                        };
                        let gate = sim.submit(
                            TaskSpec::new(
                                Resource::GpuCompute,
                                cost.gate_time(gate_tokens),
                                TaskMeta::of(OpClass::GateCompute).layer(l).step(step_idx),
                            )
                            .after(attn),
                        );
                        computes.push(gate);

                        let counts = view.expert_tokens(step, m, s0, s1);
                        let mut gpu_chain: Option<TaskId> = Some(gate);
                        let mut cpu_chain: Option<TaskId> = None;
                        for (e, &tokens) in counts.iter().enumerate() {
                            if tokens == 0 {
                                continue;
                            }
                            let e16 = e as u16;
                            let is_resident = resident.contains(&(l, e16));
                            let disk_penalty = if l >= disk_cutoff {
                                cost.disk_time(spec.expert_bytes())
                            } else {
                                SimDuration::ZERO
                            };
                            let cpu_time = cost.cpu_expert_time(tokens as u64) + disk_penalty;
                            let gpu_time = cost.expert_time(tokens as u64);
                            let move_time = cost.expert_h2d_time(1.0) + disk_penalty;

                            // Prefill always takes the GPU; decode compares.
                            let use_cpu = !is_resident
                                && matches!(step, StepKind::Decode(_))
                                && cpu_time < move_time + gpu_time;

                            if use_cpu {
                                let mut c = TaskSpec::new(
                                    Resource::CpuCompute,
                                    cpu_time,
                                    TaskMeta::of(OpClass::CpuExpertCompute)
                                        .layer(l)
                                        .expert(e as u32)
                                        .step(step_idx),
                                )
                                .after(gate);
                                if let Some(p) = cpu_chain {
                                    c = c.after(p);
                                }
                                let c = sim.submit(c);
                                cpu_chain = Some(c);
                                computes.push(c);
                            } else {
                                let transfer = if is_resident {
                                    None
                                } else {
                                    Some(
                                        sim.submit_with_priority(
                                            TaskSpec::new(
                                                Resource::LinkH2d,
                                                move_time,
                                                TaskMeta::of(OpClass::ExpertTransfer)
                                                    .layer(l)
                                                    .expert(e as u32)
                                                    .step(step_idx),
                                            )
                                            .after(gate),
                                            -1,
                                        ),
                                    )
                                };
                                let mut c = TaskSpec::new(
                                    Resource::GpuCompute,
                                    gpu_time,
                                    TaskMeta::of(OpClass::ExpertCompute)
                                        .layer(l)
                                        .expert(e as u32)
                                        .step(step_idx),
                                )
                                .after(gate);
                                if let Some(t) = transfer {
                                    c = c.after(t);
                                }
                                if let Some(p) = gpu_chain {
                                    c = c.after(p);
                                }
                                let c = sim.submit(c);
                                gpu_chain = Some(c);
                                computes.push(c);
                            }
                        }
                    } else {
                        let tokens = match step {
                            StepKind::Prefill => bs * wl.prompt_len as u64,
                            StepKind::Decode(_) => bs,
                        };
                        computes.push(
                            sim.submit(
                                TaskSpec::new(
                                    Resource::GpuCompute,
                                    cost.dense_ffn_time(tokens),
                                    TaskMeta::of(OpClass::DenseCompute).layer(l).step(step_idx),
                                )
                                .after(attn),
                            ),
                        );
                    }

                    let end = sim.submit(
                        TaskSpec::new(
                            Resource::GpuCompute,
                            SimDuration::ZERO,
                            TaskMeta::of(OpClass::Offload).layer(l).step(step_idx),
                        )
                        .after_all(computes),
                    );
                    layer_ends.push(end);
                    carry = Some(end);
                }
            }
        }

        let (stats, oom) = drain(&mut sim, false)?;
        Ok(build_report(self.name(), spec, &wl, &sim, &stats, oom))
    }
}

/// Block index of MoE layer `m`.
fn moe_to_block(spec: &klotski_model::spec::ModelSpec, m: u32) -> u32 {
    (0..spec.n_layers)
        .filter(|&l| spec.is_moe_layer(l))
        .nth(m as usize)
        .expect("moe index in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;
    use klotski_model::workload::Workload;

    fn scenario(bs: u32) -> Scenario {
        Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(bs, 1, 128, 3),
            7,
        )
    }

    #[test]
    fn completes_and_uses_the_cpu() {
        let sc = scenario(8);
        let r = Fiddler.run(&sc).unwrap();
        assert!(r.succeeded(), "{:?}", r.oom);
        assert!(r.throughput_tps() > 0.0);
    }

    #[test]
    fn cpu_orchestration_beats_pure_transfer_at_small_batch() {
        // At batch 4, per-expert token counts are tiny: Fiddler's CPU path
        // should beat MoE-Infinity's transfer-on-miss (Env 1, where the
        // paper observes exactly this).
        let sc = scenario(4);
        let fid = Fiddler.run(&sc).unwrap();
        let inf = crate::moe_infinity::MoeInfinity.run(&sc).unwrap();
        assert!(
            fid.throughput_tps() > inf.throughput_tps() * 0.8,
            "Fiddler {} should be at least competitive with MoE-Infinity {}",
            fid.throughput_tps(),
            inf.throughput_tps()
        );
    }

    #[test]
    fn ooms_on_8x22b_at_batch_32() {
        let bad = Fiddler
            .run(&Scenario::generate(
                ModelSpec::mixtral_8x22b(),
                HardwareSpec::env1_rtx3090(),
                Workload::new(32, 1, 512, 2),
                5,
            ))
            .unwrap();
        assert!(!bad.succeeded());
    }

    #[test]
    fn rejects_dense_models() {
        let sc = Scenario::generate(
            ModelSpec::opt_1_3b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(4, 1, 128, 2),
            5,
        );
        assert!(matches!(
            Fiddler.run(&sc),
            Err(EngineError::InvalidConfig(_))
        ));
    }
}
