//! MoE-Infinity: activation-aware expert prefetching + expert caching.
//!
//! Single-batch serving with **experts-only** offloading: attention/gate
//! weights and the KV cache stay resident in VRAM (which is what caps its
//! batch size — §9.2 of the paper), while experts live in DRAM behind an
//! LRU cache carved out of the remaining VRAM. Before each MoE layer the
//! engine prefetches the experts its activation statistics predict
//! (modelled with the same correlation table Klotski uses, which is a
//! *generous* reading of its tracing mechanism); gate-selected misses
//! transfer on demand. Expert computation stays in gate order — no
//! reordering, no multi-batch sharing.

use std::collections::BTreeMap;

use klotski_core::driver::{build_report, drain, StepKind, TraceView};
use klotski_core::prefetcher::CorrelationTable;
use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, EngineError, Scenario};
use klotski_sim::prelude::*;

use crate::common::{dram_expert_cutoff, ResidentFootprint};

/// The MoE-Infinity baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct MoeInfinity;

/// A deterministic LRU set of `(layer, expert)` pairs.
#[derive(Debug)]
struct ExpertLru {
    capacity: usize,
    clock: u64,
    entries: BTreeMap<(u32, u16), u64>,
}

impl ExpertLru {
    fn new(capacity: usize) -> Self {
        ExpertLru {
            capacity: capacity.max(1),
            clock: 0,
            entries: BTreeMap::new(),
        }
    }

    fn contains(&mut self, key: (u32, u16)) -> bool {
        self.clock += 1;
        if let Some(t) = self.entries.get_mut(&key) {
            *t = self.clock;
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: (u32, u16)) {
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|&(_, &t)| t) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, self.clock);
    }
}

impl Engine for MoeInfinity {
    fn name(&self) -> String {
        "MoE-Infinity".into()
    }

    fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
        if !sc.spec.is_moe() {
            return Err(EngineError::InvalidConfig(
                "MoE-Infinity serves MoE models only".into(),
            ));
        }
        let Some(trace) = sc.trace.as_ref() else {
            return Err(EngineError::InvalidConfig(
                "MoE scenario without a gating trace".into(),
            ));
        };
        let cost = sc.cost_model();
        let wl = sc.workload;
        let spec = &sc.spec;
        let mut sim = Simulator::new(sc.hw.tier_capacities());

        // Experts-only offloading: everything else is resident.
        let footprint = ResidentFootprint::for_single_batch(spec, &wl);
        if let Some(msg) = footprint.oom_message(sc.hw.vram_bytes) {
            let stats = klotski_core::driver::RunStats::default();
            return Ok(build_report(
                self.name(),
                spec,
                &wl,
                &sim,
                &stats,
                Some(msg),
            ));
        }
        let spare = footprint.spare(sc.hw.vram_bytes).expect("checked above");
        let cache_bytes = footprint.expert_reserve + spare / 10 * 9;
        let cache_capacity = (cache_bytes / spec.expert_bytes().max(1)) as usize;
        let static_vram = footprint.total() - footprint.expert_reserve + cache_bytes;
        sim.pool_mut(Tier::Vram)
            .alloc(static_vram)
            .expect("footprint checked against VRAM");
        let dram_cap = sim.pool(Tier::Dram).capacity();
        sim.pool_mut(Tier::Dram)
            .alloc(spec.total_bytes().min(dram_cap))
            .expect("weights fit DRAM");

        // Activation tracing: warmed-up correlation table, updated online.
        let mut table = CorrelationTable::new(spec.n_moe_layers(), spec.n_experts);
        if let Some(base) = &sc.base_gating {
            table.warm_up(base, 4096, 0xBEEF);
        }

        let view = TraceView::new(trace);
        let mut lru = ExpertLru::new(cache_capacity);
        let mut carry: Option<TaskId> = None;
        let mut layer_ends: Vec<TaskId> = Vec::new();

        // Without tiered placement, the experts of the tail layers live on
        // disk when the model exceeds DRAM; fetching them pays the disk
        // read before the PCIe hop.
        let disk_cutoff = dram_expert_cutoff(spec, sc.hw.dram_bytes);
        let fetch_time = |layer: u32| {
            if layer >= disk_cutoff {
                cost.disk_time(spec.expert_bytes()) + cost.expert_h2d_time(1.0)
            } else {
                cost.expert_h2d_time(1.0)
            }
        };

        for batch in 0..wl.num_batches {
            let s0 = batch * wl.batch_size;
            let s1 = s0 + wl.batch_size;
            for step in StepKind::all(wl.gen_len) {
                for l in 0..spec.n_layers {
                    let step_idx = step.index();
                    let bs = wl.batch_size as u64;
                    let ctx = step.context(wl.prompt_len);

                    // Prefetch predicted experts before attention.
                    let mut transfers: BTreeMap<u16, TaskId> = BTreeMap::new();
                    let m = spec.moe_index(l);
                    if let Some(m) = m {
                        let predicted = match step {
                            StepKind::Prefill => table.predict_marginal(m, spec.top_k),
                            StepKind::Decode(i) => {
                                if m == 0 {
                                    table.predict_marginal(0, spec.top_k)
                                } else {
                                    let prev = view.prev_choices(i, m, s0, s1);
                                    table.predict(m, &prev, spec.top_k)
                                }
                            }
                        };
                        let throttle = layer_ends.len().checked_sub(2).map(|i| layer_ends[i]);
                        for e in predicted {
                            if lru.contains((l, e)) {
                                continue;
                            }
                            let mut t = TaskSpec::new(
                                Resource::LinkH2d,
                                fetch_time(l),
                                TaskMeta::of(OpClass::ExpertTransfer)
                                    .layer(l)
                                    .expert(e as u32)
                                    .step(step_idx),
                            );
                            if let Some(thr) = throttle {
                                t = t.after(thr);
                            }
                            transfers.insert(e, self_submit(&mut sim, t, 0));
                            lru.insert((l, e));
                        }
                    }

                    // Attention (weights resident, KV resident).
                    let attn_dur = match step {
                        StepKind::Prefill => {
                            cost.attention_time(bs, wl.prompt_len as u64, ctx / 2 + 1)
                        }
                        StepKind::Decode(_) => cost.attention_time(bs, 1, ctx),
                    };
                    let mut attn = TaskSpec::new(
                        Resource::GpuCompute,
                        attn_dur,
                        TaskMeta::of(OpClass::AttentionCompute)
                            .layer(l)
                            .step(step_idx),
                    );
                    if let Some(c) = carry {
                        attn = attn.after(c);
                    }
                    let attn = sim.submit(attn);

                    let mut computes = vec![attn];
                    if let Some(m) = m {
                        let gate_tokens = match step {
                            StepKind::Prefill => bs * wl.prompt_len as u64,
                            StepKind::Decode(_) => bs,
                        };
                        let gate = sim.submit(
                            TaskSpec::new(
                                Resource::GpuCompute,
                                cost.gate_time(gate_tokens),
                                TaskMeta::of(OpClass::GateCompute).layer(l).step(step_idx),
                            )
                            .after(attn),
                        );
                        computes.push(gate);

                        // Serve activated experts in gate order.
                        let counts = view.expert_tokens(step, m, s0, s1);
                        let mut prev: Option<TaskId> = Some(gate);
                        for (e, &tokens) in counts.iter().enumerate() {
                            if tokens == 0 {
                                continue;
                            }
                            let e = e as u16;
                            let transfer = if let Some(&t) = transfers.get(&e) {
                                Some(t)
                            } else if lru.contains((l, e)) {
                                None // cache hit
                            } else {
                                let t = TaskSpec::new(
                                    Resource::LinkH2d,
                                    fetch_time(l),
                                    TaskMeta::of(OpClass::ExpertTransfer)
                                        .layer(l)
                                        .expert(e as u32)
                                        .step(step_idx),
                                )
                                .after(gate);
                                lru.insert((l, e));
                                Some(self_submit(&mut sim, t, -1))
                            };
                            let mut c = TaskSpec::new(
                                Resource::GpuCompute,
                                cost.expert_time(tokens as u64),
                                TaskMeta::of(OpClass::ExpertCompute)
                                    .layer(l)
                                    .expert(e as u32)
                                    .step(step_idx),
                            )
                            .after(gate);
                            if let Some(t) = transfer {
                                c = c.after(t);
                            }
                            if let Some(p) = prev {
                                c = c.after(p);
                            }
                            let c = sim.submit(c);
                            prev = Some(c);
                            computes.push(c);
                        }

                        // Online activation tracing.
                        match step {
                            StepKind::Prefill => {
                                for (e, &c) in counts.iter().enumerate() {
                                    if c > 0 {
                                        table.record_marginal(m, e as u16, c as u64);
                                    }
                                }
                            }
                            StepKind::Decode(i) => {
                                for s in s0..s1 {
                                    let choices = trace.seq_choices(i, m, s);
                                    let prev_choice = if m == 0 {
                                        None
                                    } else {
                                        Some(trace.seq_choices(i, m - 1, s)[0])
                                    };
                                    table.record(m, prev_choice, choices);
                                }
                            }
                        }
                    } else {
                        let tokens = match step {
                            StepKind::Prefill => bs * wl.prompt_len as u64,
                            StepKind::Decode(_) => bs,
                        };
                        computes.push(
                            sim.submit(
                                TaskSpec::new(
                                    Resource::GpuCompute,
                                    cost.dense_ffn_time(tokens),
                                    TaskMeta::of(OpClass::DenseCompute).layer(l).step(step_idx),
                                )
                                .after(attn),
                            ),
                        );
                    }

                    let end = sim.submit(
                        TaskSpec::new(
                            Resource::GpuCompute,
                            SimDuration::ZERO,
                            TaskMeta::of(OpClass::Offload).layer(l).step(step_idx),
                        )
                        .after_all(computes),
                    );
                    layer_ends.push(end);
                    carry = Some(end);
                }
            }
        }

        let (stats, oom) = drain(&mut sim, false)?;
        Ok(build_report(self.name(), spec, &wl, &sim, &stats, oom))
    }
}

fn self_submit(sim: &mut Simulator, spec: TaskSpec, priority: i32) -> TaskId {
    sim.submit_with_priority(spec, priority)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;
    use klotski_model::workload::Workload;

    fn scenario(model: ModelSpec, bs: u32, n: u32) -> Scenario {
        Scenario::generate(
            model,
            HardwareSpec::env1_rtx3090(),
            Workload::new(bs, n, 128, 3),
            5,
        )
    }

    #[test]
    fn completes_on_8x7b() {
        let sc = scenario(ModelSpec::mixtral_8x7b(), 8, 2);
        let r = MoeInfinity.run(&sc).unwrap();
        assert!(r.succeeded(), "{:?}", r.oom);
        assert!(r.throughput_tps() > 0.0);
    }

    #[test]
    fn ooms_on_8x22b_at_batch_32() {
        // §9.2: "Fiddler and MoE-Infinity are limited to a maximum batch
        // size of 16" for 8×22B on the 3090.
        let ok = MoeInfinity
            .run(&Scenario::generate(
                ModelSpec::mixtral_8x22b(),
                HardwareSpec::env1_rtx3090(),
                Workload::new(16, 1, 512, 2),
                5,
            ))
            .unwrap();
        assert!(ok.succeeded(), "{:?}", ok.oom);
        let bad = MoeInfinity
            .run(&Scenario::generate(
                ModelSpec::mixtral_8x22b(),
                HardwareSpec::env1_rtx3090(),
                Workload::new(32, 1, 512, 2),
                5,
            ))
            .unwrap();
        assert!(!bad.succeeded());
        assert_eq!(bad.throughput_tps(), 0.0);
    }

    #[test]
    fn caching_reduces_decode_transfers() {
        // With a warm cache, later steps hit; total time per extra decode
        // step shrinks versus an engine that always transfers. Proxy: the
        // H2D link is busy for less time than serving every activation
        // would cost.
        let sc = scenario(ModelSpec::mixtral_8x7b(), 8, 1);
        let r = MoeInfinity.run(&sc).unwrap();
        assert!(r.succeeded());
        assert!(
            r.gpu_bubble > SimDuration::ZERO,
            "single batch always stalls some"
        );
    }

    #[test]
    fn rejects_dense_models() {
        let sc = scenario(ModelSpec::opt_1_3b(), 4, 1);
        assert!(matches!(
            MoeInfinity.run(&sc),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut lru = ExpertLru::new(2);
        lru.insert((0, 0));
        lru.insert((0, 1));
        assert!(lru.contains((0, 0))); // refresh 0
        lru.insert((0, 2)); // evicts (0,1)
        assert!(lru.contains((0, 0)));
        assert!(!lru.contains((0, 1)));
        assert!(lru.contains((0, 2)));
    }
}
