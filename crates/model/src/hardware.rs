//! Hardware environment specifications.
//!
//! A [`HardwareSpec`] captures the *effective* rates of a machine — not
//! datasheet peaks — because the paper's engine runs on an eager PyTorch /
//! Hugging Face stack whose measured per-op times are far from peak (its own
//! anchors: ≈2.6 ms attention at batch 16 and ≈21 ms per 352 MB expert
//! transfer on the RTX 3090 environment). The presets encode Table 2 of the
//! paper plus calibration constants derived from those anchors; see
//! EXPERIMENTS.md for the derivation.

use klotski_sim::sim::TierCapacities;
use klotski_sim::time::SimDuration;

const GB: u64 = 1_000_000_000;

/// Effective machine description used by the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareSpec {
    /// Human-readable name.
    pub name: String,
    /// Effective GPU matmul throughput (FLOP/s) under the eager framework.
    pub gpu_flops: f64,
    /// Effective GPU memory bandwidth (B/s) for memory-bound kernels.
    pub gpu_mem_bw: f64,
    /// Per-kernel launch + framework dispatch overhead on the GPU path.
    pub kernel_overhead: SimDuration,
    /// Effective CPU compute throughput (FLOP/s) for expert FFNs
    /// (Fiddler-style execution; multi-threaded GEMM on the host).
    pub cpu_flops: f64,
    /// Effective host memory bandwidth (B/s); decode-time expert GEMV on the
    /// CPU is bound by streaming the expert weights from DRAM, not by FLOPs.
    pub cpu_mem_bw: f64,
    /// Effective host→device bandwidth with pinned memory (B/s).
    pub h2d_bw: f64,
    /// Effective device→host bandwidth with pinned memory (B/s).
    pub d2h_bw: f64,
    /// Bandwidth multiplier for unpinned (pageable) transfers.
    pub unpinned_factor: f64,
    /// Fixed per-transfer latency (DMA setup, driver call).
    pub transfer_latency: SimDuration,
    /// Disk → DRAM bandwidth (B/s).
    pub disk_bw: f64,
    /// GPU memory capacity (bytes).
    pub vram_bytes: u64,
    /// Host memory capacity usable for the model (bytes).
    pub dram_bytes: u64,
    /// Disk capacity (bytes).
    pub disk_bytes: u64,
}

impl HardwareSpec {
    /// Environment 1 of the paper: NVIDIA RTX 3090 (24 GB), Xeon Gold 5318Y,
    /// 256 GB DRAM, 2 TB SSD at ~1 GB/s, PCIe 4.0 ×16.
    ///
    /// Calibration: 352 MB expert ⇒ 21 ms ⇒ 16.8 GB/s effective H2D;
    /// attention at batch 16 ⇒ ≈2.6 ms with ~30 kernels ⇒ ≈75 µs/kernel;
    /// single-expert-token compute ⇒ <1 ms (memory-bound + 5 kernels).
    pub fn env1_rtx3090() -> Self {
        HardwareSpec {
            name: "Env1 (RTX 3090, PCIe 4.0 x16)".to_owned(),
            gpu_flops: 13.0e12,
            gpu_mem_bw: 750.0e9,
            kernel_overhead: SimDuration::from_micros(75),
            cpu_flops: 0.9e12,
            cpu_mem_bw: 45.0e9,
            h2d_bw: 16.8e9,
            d2h_bw: 15.0e9,
            unpinned_factor: 0.30,
            transfer_latency: SimDuration::from_micros(30),
            disk_bw: 1.0e9,
            vram_bytes: 24 * GB,
            dram_bytes: 256 * GB,
            disk_bytes: 2000 * GB,
        }
    }

    /// Environment 2 of the paper: NVIDIA H800 (80 GB), Xeon Platinum 8470,
    /// 800 GB DRAM, PCIe 5.0 ×16 (disk speed irrelevant: DRAM fits all).
    pub fn env2_h800() -> Self {
        HardwareSpec {
            name: "Env2 (H800, PCIe 5.0 x16)".to_owned(),
            gpu_flops: 150.0e12,
            gpu_mem_bw: 2.6e12,
            kernel_overhead: SimDuration::from_micros(50),
            cpu_flops: 2.0e12,
            cpu_mem_bw: 120.0e9,
            h2d_bw: 42.0e9,
            d2h_bw: 38.0e9,
            unpinned_factor: 0.30,
            transfer_latency: SimDuration::from_micros(20),
            disk_bw: 3.0e9,
            vram_bytes: 80 * GB,
            dram_bytes: 800 * GB,
            disk_bytes: 1000 * GB,
        }
    }

    /// Tier capacities for the simulator's memory pools.
    pub fn tier_capacities(&self) -> TierCapacities {
        TierCapacities {
            vram: self.vram_bytes,
            dram: self.dram_bytes,
            disk: self.disk_bytes,
        }
    }

    /// Scales link bandwidths by `factor` (used in sensitivity studies).
    pub fn with_link_scale(mut self, factor: f64) -> Self {
        self.h2d_bw *= factor;
        self.d2h_bw *= factor;
        self.name = format!("{} (links ×{factor})", self.name);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env1_matches_table2() {
        let hw = HardwareSpec::env1_rtx3090();
        assert_eq!(hw.vram_bytes, 24 * GB);
        assert_eq!(hw.dram_bytes, 256 * GB);
        assert_eq!(hw.disk_bytes, 2000 * GB);
        assert!((hw.disk_bw - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn env2_matches_table2() {
        let hw = HardwareSpec::env2_h800();
        assert_eq!(hw.vram_bytes, 80 * GB);
        assert_eq!(hw.dram_bytes, 800 * GB);
        assert!(hw.h2d_bw > HardwareSpec::env1_rtx3090().h2d_bw);
        assert!(hw.gpu_flops > HardwareSpec::env1_rtx3090().gpu_flops);
    }

    #[test]
    fn expert_transfer_anchor_holds() {
        // 352 MB over the env1 link ≈ 21 ms (paper §1).
        let hw = HardwareSpec::env1_rtx3090();
        let ms = 352.3e6 / hw.h2d_bw * 1e3;
        assert!((ms - 21.0).abs() < 1.0, "expert transfer = {ms} ms");
    }

    #[test]
    fn tier_capacities_mirror_spec() {
        let hw = HardwareSpec::env1_rtx3090();
        let caps = hw.tier_capacities();
        assert_eq!(caps.vram, hw.vram_bytes);
        assert_eq!(caps.dram, hw.dram_bytes);
        assert_eq!(caps.disk, hw.disk_bytes);
    }

    #[test]
    fn link_scaling_applies_to_both_directions() {
        let hw = HardwareSpec::env1_rtx3090().with_link_scale(2.0);
        assert!((hw.h2d_bw - 33.6e9).abs() < 1.0);
        assert!((hw.d2h_bw - 30.0e9).abs() < 1.0);
    }
}
