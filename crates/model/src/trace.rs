//! Synthetic gating traces: which experts each token activates.
//!
//! The paper's scheduler exploits two statistical properties of real MoE
//! routing (its Fig. 5 and §3.2):
//!
//! 1. **Hot experts** — per layer, a few experts receive most tokens
//!    (top-K of 8 covering ≈54–60% in Mixtral-8×7B).
//! 2. **Inter-layer correlation** — a token's expert at layer *l* predicts
//!    its expert at layer *l+1* (the basis of the correlation-aware
//!    prefetcher, §6.2), while routing remains **data sensitive**: the hot
//!    set shifts between tasks.
//!
//! [`GatingModel`] is a generative model with exactly these properties:
//! per-layer Zipf-skewed popularity over a layer-specific expert
//! permutation, first-order Markov transitions between consecutive MoE
//! layers, and a per-task multiplicative drift. [`GatingTrace`] is a
//! materialized sample: aggregated token counts for the prefill plus
//! per-sequence top-k choices for every decode step.
//!
//! [`RequestTrace`] records the *request* level instead: a replayable
//! `(t, prompt_len, gen_len)` stream with a plain-text round-trip format,
//! so serving experiments can run recorded load (diurnal cycles, flash
//! crowds) rather than only synthetic arrival processes.

use klotski_sim::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::ModelSpec;

/// Configuration of the gating generative model.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of MoE layers.
    pub n_moe_layers: u32,
    /// Experts per MoE layer.
    pub n_experts: u32,
    /// Experts chosen per token.
    pub top_k: u32,
    /// Zipf exponent of the per-layer popularity skew (≈1.15 reproduces
    /// the paper's "top-K covers most tokens" observation for 8 experts).
    pub skew: f64,
    /// Strength of inter-layer correlation in `[0, 1]`.
    pub correlation: f64,
    /// Per-task popularity drift in `[0, 1]` (data sensitivity).
    pub drift: f64,
    /// Per-decode-step popularity drift: real routing's hot set wobbles
    /// from step to step, which is what keeps prefetch accuracy below
    /// 100% even with perfect long-run statistics (paper Fig. 13).
    pub step_drift: f64,
    /// Seed for the model's structural randomness (permutations, maps).
    pub seed: u64,
}

impl TraceConfig {
    /// Default statistical parameters for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is a dense model (no experts to route to).
    pub fn for_model(spec: &ModelSpec, seed: u64) -> Self {
        assert!(spec.is_moe(), "dense models have no gating trace");
        TraceConfig {
            n_moe_layers: spec.n_moe_layers(),
            n_experts: spec.n_experts,
            top_k: spec.top_k,
            skew: 1.15,
            correlation: 0.55,
            drift: 0.35,
            step_drift: 0.9,
            seed,
        }
    }
}

/// Generative model of expert routing.
#[derive(Debug, Clone)]
pub struct GatingModel {
    n_layers: u32,
    n_experts: u32,
    top_k: u32,
    /// `popularity[l][e]`: stationary routing probability (sums to 1 per layer).
    popularity: Vec<Vec<f64>>,
    /// `affinity_map[l][e_prev]`: the "aligned" expert at MoE layer `l`
    /// given the first choice at layer `l-1`.
    affinity_map: Vec<Vec<u16>>,
    /// Correlation strength.
    correlation: f64,
    /// Per-step popularity wobble strength.
    step_drift: f64,
    /// Seed for per-step modulation streams.
    seed: u64,
}

impl GatingModel {
    /// Builds the base model for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds `n_experts`.
    pub fn new(cfg: &TraceConfig) -> Self {
        assert!(cfg.top_k > 0, "top_k must be positive");
        assert!(cfg.top_k <= cfg.n_experts, "top_k cannot exceed n_experts");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let e = cfg.n_experts as usize;
        let mut popularity = Vec::with_capacity(cfg.n_moe_layers as usize);
        let mut affinity_map = Vec::with_capacity(cfg.n_moe_layers as usize);
        for _ in 0..cfg.n_moe_layers {
            // Zipf weights assigned to a random permutation of the experts,
            // so each layer has its own hot set (as in the paper's Fig. 5).
            let mut perm: Vec<usize> = (0..e).collect();
            shuffle(&mut perm, &mut rng);
            let mut weights = vec![0.0; e];
            for (rank, &expert) in perm.iter().enumerate() {
                weights[expert] = 1.0 / ((rank + 1) as f64).powf(cfg.skew);
            }
            normalize(&mut weights);
            popularity.push(weights);
            // Each previous-layer expert maps to one "aligned" expert here.
            let mut map: Vec<u16> = (0..e as u16).collect();
            shuffle(&mut map, &mut rng);
            affinity_map.push(map);
        }
        GatingModel {
            n_layers: cfg.n_moe_layers,
            n_experts: cfg.n_experts,
            top_k: cfg.top_k,
            popularity,
            affinity_map,
            correlation: cfg.correlation,
            step_drift: cfg.step_drift,
            seed: cfg.seed,
        }
    }

    /// Number of MoE layers.
    pub fn n_moe_layers(&self) -> u32 {
        self.n_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> u32 {
        self.n_experts
    }

    /// Experts per token.
    pub fn top_k(&self) -> u32 {
        self.top_k
    }

    /// A task-specific variant: popularity perturbed multiplicatively by
    /// `drift`, re-normalized. Models the paper's observation that hot
    /// experts change with the input data.
    pub fn drifted(&self, drift: f64, task_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(task_seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut out = self.clone();
        for layer in &mut out.popularity {
            for w in layer.iter_mut() {
                // log-uniform multiplicative noise in [e^-d, e^d].
                let u: f64 = rng.gen_range(-drift..=drift);
                *w *= u.exp();
            }
            normalize(layer);
        }
        out
    }

    /// Stationary routing distribution at MoE layer `l`.
    pub fn popularity(&self, l: u32) -> &[f64] {
        &self.popularity[l as usize]
    }

    /// The model-level hot experts of MoE layer `l` (top `k` by popularity).
    pub fn hot_experts(&self, l: u32, k: u32) -> Vec<u16> {
        let mut idx: Vec<u16> = (0..self.n_experts as u16).collect();
        idx.sort_by(|&a, &b| {
            self.popularity[l as usize][b as usize]
                .total_cmp(&self.popularity[l as usize][a as usize])
        });
        idx.truncate(k as usize);
        idx
    }

    /// Routing distribution at layer `l` conditioned on the previous MoE
    /// layer's first choice, over base distribution `pop`.
    fn conditional_over(&self, l: u32, prev: Option<u16>, pop: &[f64]) -> Vec<f64> {
        match prev {
            None => pop.to_vec(),
            Some(p) => {
                let aligned = self.affinity_map[l as usize][p as usize] as usize;
                let mut dist: Vec<f64> = pop.iter().map(|w| w * (1.0 - self.correlation)).collect();
                dist[aligned] += self.correlation;
                dist
            }
        }
    }

    /// The per-step modulated popularity of layer `l` at decode step
    /// `step` — the long-run distribution perturbed by a step-local
    /// log-uniform wobble, modelling the data-sensitivity of routing
    /// within one batch of inputs.
    fn step_popularity(&self, l: u32, step: u32) -> Vec<f64> {
        let mut pop = self.popularity[l as usize].clone();
        if self.step_drift > 0.0 {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    ^ (step as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (l as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9),
            );
            for w in pop.iter_mut() {
                let u: f64 = rng.gen_range(-self.step_drift..=self.step_drift);
                *w *= u.exp();
            }
            normalize(&mut pop);
        }
        pop
    }

    /// Samples the top-k choices of one token at layer `l` from the
    /// long-run distribution.
    fn sample_choices(&self, l: u32, prev: Option<u16>, rng: &mut StdRng) -> Vec<u16> {
        self.sample_from(
            self.conditional_over(l, prev, &self.popularity[l as usize]),
            rng,
        )
    }

    fn sample_from(&self, mut dist: Vec<f64>, rng: &mut StdRng) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.top_k as usize);
        for _ in 0..self.top_k {
            let idx = sample_index(&dist, rng);
            out.push(idx as u16);
            dist[idx] = 0.0;
        }
        out
    }

    /// Walks `n_tokens` tokens through all MoE layers, invoking `visit`
    /// with `(moe_layer, previous_first_choice, choices)` at every layer.
    ///
    /// This is the "pre-run" primitive the correlation-aware prefetcher
    /// uses to build its expert correlation table (§6.2 / §8 of the paper).
    pub fn for_each_token_walk<F>(&self, n_tokens: u32, seed: u64, mut visit: F)
    where
        F: FnMut(u32, Option<u16>, &[u16]),
    {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n_tokens {
            let mut prev: Option<u16> = None;
            for l in 0..self.n_layers {
                let choices = self.sample_choices(l, prev, &mut rng);
                visit(l, prev, &choices);
                prev = Some(choices[0]);
            }
        }
    }

    /// Materializes a trace for `n_seqs` sequences: aggregated prefill
    /// counts (`prompt_len` tokens per sequence) and per-sequence choices
    /// for `gen_len` decode steps.
    pub fn generate_trace(
        &self,
        n_seqs: u32,
        prompt_len: u32,
        gen_len: u32,
        seed: u64,
    ) -> GatingTrace {
        let e = self.n_experts as usize;
        let layers = self.n_layers as usize;
        let k = self.top_k as usize;
        let mut rng = StdRng::seed_from_u64(seed);

        // Prefill: expected counts with largest-remainder rounding. The
        // engines only consume aggregate per-expert token counts here, and
        // at prompt × batch scale the law of large numbers makes the
        // expectation the right summary.
        let total_routed = n_seqs as u64 * prompt_len as u64 * self.top_k as u64;
        let mut prefill_counts = vec![0u32; layers * e];
        for l in 0..layers {
            let counts = apportion(self.popularity(l as u32), total_routed);
            prefill_counts[l * e..(l + 1) * e]
                .copy_from_slice(&counts.iter().map(|&c| c as u32).collect::<Vec<_>>());
        }

        // Decode: exact per-sequence sampling with inter-layer correlation
        // and step-level popularity wobble.
        let mut decode = vec![0u16; gen_len as usize * layers * n_seqs as usize * k];
        for step in 0..gen_len {
            let step_pops: Vec<Vec<f64>> = (0..layers as u32)
                .map(|l| self.step_popularity(l, step))
                .collect();
            for seq in 0..n_seqs as usize {
                let mut prev: Option<u16> = None;
                for (l, pops) in step_pops.iter().enumerate() {
                    let dist = self.conditional_over(l as u32, prev, pops);
                    let choices = self.sample_from(dist, &mut rng);
                    let base = ((step as usize * layers + l) * n_seqs as usize + seq) * k;
                    decode[base..base + k].copy_from_slice(&choices);
                    prev = Some(choices[0]);
                }
            }
        }

        GatingTrace {
            n_moe_layers: self.n_layers,
            n_experts: self.n_experts,
            top_k: self.top_k,
            n_seqs,
            prompt_len,
            gen_len,
            prefill_counts,
            decode,
        }
    }
}

/// A materialized routing trace: the ground truth engines execute against.
#[derive(Debug, Clone)]
pub struct GatingTrace {
    n_moe_layers: u32,
    n_experts: u32,
    top_k: u32,
    n_seqs: u32,
    prompt_len: u32,
    gen_len: u32,
    /// `[moe_layer][expert]` routed-token counts over the whole prefill.
    prefill_counts: Vec<u32>,
    /// `[step][moe_layer][seq][k]`, flattened.
    decode: Vec<u16>,
}

impl GatingTrace {
    /// Number of MoE layers.
    pub fn n_moe_layers(&self) -> u32 {
        self.n_moe_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> u32 {
        self.n_experts
    }

    /// Experts per token.
    pub fn top_k(&self) -> u32 {
        self.top_k
    }

    /// Number of sequences.
    pub fn n_seqs(&self) -> u32 {
        self.n_seqs
    }

    /// Prompt length used for the prefill aggregates.
    pub fn prompt_len(&self) -> u32 {
        self.prompt_len
    }

    /// Number of decode steps.
    pub fn gen_len(&self) -> u32 {
        self.gen_len
    }

    /// Routed-token counts per expert for the prefill at `moe_layer`.
    pub fn prefill_tokens_per_expert(&self, moe_layer: u32) -> &[u32] {
        let e = self.n_experts as usize;
        let l = moe_layer as usize;
        &self.prefill_counts[l * e..(l + 1) * e]
    }

    /// All sequences' top-k choices at (`step`, `moe_layer`), flattened with
    /// stride [`top_k`](GatingTrace::top_k).
    pub fn decode_choices(&self, step: u32, moe_layer: u32) -> &[u16] {
        let k = self.top_k as usize;
        let n = self.n_seqs as usize;
        let layers = self.n_moe_layers as usize;
        let base = ((step as usize * layers) + moe_layer as usize) * n * k;
        &self.decode[base..base + n * k]
    }

    /// One sequence's top-k choices at (`step`, `moe_layer`).
    pub fn seq_choices(&self, step: u32, moe_layer: u32, seq: u32) -> &[u16] {
        let k = self.top_k as usize;
        let all = self.decode_choices(step, moe_layer);
        &all[seq as usize * k..(seq as usize + 1) * k]
    }

    /// Routed-token counts per expert at decode (`step`, `moe_layer`),
    /// restricted to sequences `[seq_from, seq_to)`.
    pub fn tokens_per_expert_in(
        &self,
        step: u32,
        moe_layer: u32,
        seq_from: u32,
        seq_to: u32,
    ) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_experts as usize];
        let k = self.top_k as usize;
        let all = self.decode_choices(step, moe_layer);
        for seq in seq_from..seq_to {
            for &e in &all[seq as usize * k..(seq as usize + 1) * k] {
                counts[e as usize] += 1;
            }
        }
        counts
    }

    /// Routed-token counts per expert at decode (`step`, `moe_layer`) over
    /// all sequences.
    pub fn tokens_per_expert(&self, step: u32, moe_layer: u32) -> Vec<u32> {
        self.tokens_per_expert_in(step, moe_layer, 0, self.n_seqs)
    }

    /// The experts that receive at least one token at (`step`, `moe_layer`).
    pub fn activated(&self, step: u32, moe_layer: u32) -> Vec<u16> {
        self.tokens_per_expert(step, moe_layer)
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(e, _)| e as u16)
            .collect()
    }

    /// The `k` most-requested experts at (`step`, `moe_layer`) — the
    /// *actual* hot experts of that step, used to score prefetch accuracy.
    pub fn step_hot_experts(&self, step: u32, moe_layer: u32, k: u32) -> Vec<u16> {
        let counts = self.tokens_per_expert(step, moe_layer);
        let mut idx: Vec<u16> = (0..self.n_experts as u16).collect();
        idx.sort_by_key(|&e| std::cmp::Reverse(counts[e as usize]));
        idx.truncate(k as usize);
        idx
    }

    /// Total routed tokens per expert at `moe_layer` across prefill and all
    /// decode steps (the Fig. 5 heatmap column).
    pub fn popularity_counts(&self, moe_layer: u32) -> Vec<u64> {
        let mut counts: Vec<u64> = self
            .prefill_tokens_per_expert(moe_layer)
            .iter()
            .map(|&c| c as u64)
            .collect();
        for step in 0..self.gen_len {
            for (e, c) in self.tokens_per_expert(step, moe_layer).iter().enumerate() {
                counts[e] += *c as u64;
            }
        }
        counts
    }
}

// ---- helpers ----------------------------------------------------------

fn normalize(weights: &mut [f64]) {
    let total: f64 = weights.iter().sum();
    if total > 0.0 {
        for w in weights.iter_mut() {
            *w /= total;
        }
    }
}

fn sample_index(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "cannot sample from all-zero weights");
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle (local, to avoid depending on rand's `slice` feature
/// surface changing between versions).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Largest-remainder apportionment of `total` into integer counts ∝ `weights`.
fn apportion(weights: &[f64], total: u64) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || total == 0 {
        return vec![0; weights.len()];
    }
    let exact: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<u64> = exact.iter().map(|&x| x.floor() as u64).collect();
    let assigned: u64 = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = exact
        .iter()
        .enumerate()
        .map(|(i, &x)| (i, x - x.floor()))
        .collect();
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take((total - assigned) as usize) {
        counts[i] += 1;
    }
    counts
}

/// One recorded request in a [`RequestTrace`]: when it arrived and its
/// token shape. The serving layer replays these verbatim (ids assigned in
/// row order), so a recorded production stream — diurnal cycles, flash
/// crowds and all — can be re-served under any policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRow {
    /// Arrival instant.
    pub at: SimTime,
    /// Prompt length in tokens (≥ 1).
    pub prompt_len: u32,
    /// Tokens to generate (≥ 1).
    pub gen_len: u32,
}

/// A recorded `(t, prompt_len, gen_len)` request trace.
///
/// The text format is one row per line — `arrival_nanos prompt_len
/// gen_len`, whitespace-separated — with `#`-prefixed comment lines
/// ignored, so traces can be versioned, diffed, and hand-edited.
/// [`to_text`](RequestTrace::to_text) / [`parse`](RequestTrace::parse)
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestTrace {
    /// The recorded rows, in arrival order.
    pub rows: Vec<TraceRow>,
}

impl RequestTrace {
    /// Records a trace from `(arrival, prompt_len, gen_len)` tuples.
    ///
    /// # Panics
    ///
    /// Panics if rows are not in non-decreasing arrival order or any
    /// length is zero — a trace that cannot have been observed.
    pub fn record(rows: impl IntoIterator<Item = (SimTime, u32, u32)>) -> Self {
        let rows: Vec<TraceRow> = rows
            .into_iter()
            .map(|(at, prompt_len, gen_len)| {
                assert!(
                    prompt_len > 0 && gen_len > 0,
                    "trace rows need positive lengths"
                );
                TraceRow {
                    at,
                    prompt_len,
                    gen_len,
                }
            })
            .collect();
        assert!(
            rows.windows(2).all(|w| w[0].at <= w[1].at),
            "trace rows must be in arrival order"
        );
        RequestTrace { rows }
    }

    /// Serializes to the line-per-row text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# klotski request trace: arrival_nanos prompt_len gen_len\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{} {} {}\n",
                r.at.as_nanos(),
                r.prompt_len,
                r.gen_len
            ));
        }
        out
    }

    /// Parses the text format produced by [`to_text`](RequestTrace::to_text).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line: wrong field
    /// count, unparsable number, zero length, or out-of-order arrival.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rows = Vec::new();
        let mut last = SimTime::ZERO;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [at, prompt, gen] = fields[..] else {
                return Err(format!(
                    "line {}: expected 3 fields, got {}",
                    lineno + 1,
                    fields.len()
                ));
            };
            let parse_u64 = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|e| format!("line {}: bad {what} {s:?}: {e}", lineno + 1))
            };
            let at = SimTime::from_nanos(parse_u64(at, "arrival")?);
            let prompt_len = parse_u64(prompt, "prompt_len")? as u32;
            let gen_len = parse_u64(gen, "gen_len")? as u32;
            if prompt_len == 0 || gen_len == 0 {
                return Err(format!("line {}: lengths must be positive", lineno + 1));
            }
            if at < last {
                return Err(format!("line {}: arrivals out of order", lineno + 1));
            }
            last = at;
            rows.push(TraceRow {
                at,
                prompt_len,
                gen_len,
            });
        }
        Ok(RequestTrace { rows })
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixtral_model() -> GatingModel {
        let cfg = TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 42);
        GatingModel::new(&cfg)
    }

    #[test]
    fn popularity_is_normalized_and_skewed() {
        let m = mixtral_model();
        for l in 0..m.n_moe_layers() {
            let p = m.popularity(l);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            // Top-2 of 8 covers a majority-ish share (paper: ≈54%).
            let hot = m.hot_experts(l, 2);
            let share: f64 = hot.iter().map(|&e| p[e as usize]).sum();
            assert!(
                (0.45..0.75).contains(&share),
                "layer {l}: top-2 share = {share}"
            );
        }
    }

    #[test]
    fn hot_sets_differ_across_layers() {
        let m = mixtral_model();
        let sets: Vec<Vec<u16>> = (0..m.n_moe_layers()).map(|l| m.hot_experts(l, 2)).collect();
        let distinct: std::collections::HashSet<&Vec<u16>> = sets.iter().collect();
        assert!(distinct.len() > 4, "hot sets should vary across layers");
    }

    #[test]
    fn trace_dimensions_are_consistent() {
        let m = mixtral_model();
        let t = m.generate_trace(48, 512, 8, 7);
        assert_eq!(t.n_seqs(), 48);
        assert_eq!(t.gen_len(), 8);
        assert_eq!(t.decode_choices(0, 0).len(), 48 * 2);
        assert_eq!(t.seq_choices(3, 5, 10).len(), 2);
        let counts = t.tokens_per_expert(0, 0);
        let total: u32 = counts.iter().sum();
        assert_eq!(total, 48 * 2);
    }

    #[test]
    fn topk_choices_are_distinct() {
        let m = mixtral_model();
        let t = m.generate_trace(16, 512, 4, 3);
        for step in 0..4 {
            for l in 0..t.n_moe_layers() {
                for seq in 0..16 {
                    let c = t.seq_choices(step, l, seq);
                    assert_ne!(c[0], c[1], "duplicate expert in top-2");
                }
            }
        }
    }

    #[test]
    fn prefill_counts_sum_exactly() {
        let m = mixtral_model();
        let t = m.generate_trace(24, 512, 1, 3);
        for l in 0..t.n_moe_layers() {
            let total: u64 = t
                .prefill_tokens_per_expert(l)
                .iter()
                .map(|&c| c as u64)
                .sum();
            assert_eq!(total, 24 * 512 * 2);
        }
    }

    #[test]
    fn traces_are_reproducible() {
        let m = mixtral_model();
        let a = m.generate_trace(8, 128, 4, 11);
        let b = m.generate_trace(8, 128, 4, 11);
        assert_eq!(a.decode_choices(2, 9), b.decode_choices(2, 9));
        let c = m.generate_trace(8, 128, 4, 12);
        assert_ne!(a.decode, c.decode);
    }

    #[test]
    fn correlation_makes_walks_predictable() {
        // With correlation, knowing the previous layer's choice must beat
        // the marginal at predicting the current choice.
        let cfg = TraceConfig {
            n_moe_layers: 8,
            n_experts: 8,
            top_k: 1,
            skew: 1.15,
            correlation: 0.6,
            drift: 0.0,
            step_drift: 0.0,
            seed: 5,
        };
        let m = GatingModel::new(&cfg);
        let mut aligned_hits = 0u32;
        let mut total = 0u32;
        m.for_each_token_walk(2000, 99, |l, prev, choices| {
            if let Some(p) = prev {
                total += 1;
                if m.affinity_map[l as usize][p as usize] == choices[0] {
                    aligned_hits += 1;
                }
            }
        });
        let rate = aligned_hits as f64 / total as f64;
        // Must be well above the ~1/8 + hot-expert base rate.
        assert!(rate > 0.45, "aligned-transition rate = {rate}");
    }

    #[test]
    fn drift_changes_hot_sets_sometimes() {
        let m = mixtral_model();
        let d = m.drifted(0.8, 123);
        let changed = (0..m.n_moe_layers())
            .filter(|&l| m.hot_experts(l, 2) != d.hot_experts(l, 2))
            .count();
        assert!(changed > 0, "strong drift should move some hot sets");
        // And popularity still normalized.
        for l in 0..d.n_moe_layers() {
            let sum: f64 = d.popularity(l).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn activated_and_hot_are_consistent() {
        let m = mixtral_model();
        let t = m.generate_trace(64, 512, 2, 17);
        for l in 0..t.n_moe_layers() {
            let activated = t.activated(0, l);
            assert!(!activated.is_empty());
            let hot = t.step_hot_experts(0, l, 2);
            assert_eq!(hot.len(), 2);
            for h in &hot {
                assert!(activated.contains(h), "hot expert not activated");
            }
        }
    }

    #[test]
    fn popularity_counts_cover_prefill_and_decode() {
        let m = mixtral_model();
        let t = m.generate_trace(4, 100, 2, 17);
        let total: u64 = t.popularity_counts(0).iter().sum();
        // 4 seqs × (100 prefill + 2 decode) tokens × top-2.
        assert_eq!(total, 4 * 102 * 2);
    }

    #[test]
    fn apportion_is_exact_and_proportional() {
        let counts = apportion(&[0.5, 0.3, 0.2], 10);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert_eq!(counts, vec![5, 3, 2]);
        let counts = apportion(&[1.0, 1.0, 1.0], 10);
        assert_eq!(counts.iter().sum::<u64>(), 10);
    }

    #[test]
    fn tokens_per_expert_in_respects_range() {
        let m = mixtral_model();
        let t = m.generate_trace(32, 64, 1, 3);
        let all = t.tokens_per_expert(0, 0);
        let first_half = t.tokens_per_expert_in(0, 0, 0, 16);
        let second_half = t.tokens_per_expert_in(0, 0, 16, 32);
        for e in 0..8 {
            assert_eq!(all[e], first_half[e] + second_half[e]);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Apportionment always sums exactly to the requested total.
        #[test]
        fn apportion_sums(
            weights in proptest::collection::vec(0.01f64..10.0, 1..40),
            total in 0u64..10_000,
        ) {
            let counts = apportion(&weights, total);
            prop_assert_eq!(counts.iter().sum::<u64>(), total);
        }

        /// Sampled indices are always in range and respect zeroed weights.
        #[test]
        fn sample_index_in_range(seed in 0u64..1000, zero_at in 0usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut w = vec![1.0; 8];
            w[zero_at] = 0.0;
            for _ in 0..50 {
                let i = sample_index(&w, &mut rng);
                prop_assert!(i < 8);
                prop_assert_ne!(i, zero_at);
            }
        }

        /// Every decode choice is a valid expert id and top-k sets have no
        /// duplicates.
        #[test]
        fn trace_choices_valid(seed in 0u64..100) {
            let cfg = TraceConfig {
                n_moe_layers: 4,
                n_experts: 8,
                top_k: 2,
                skew: 1.15,
                correlation: 0.5,
                drift: 0.0,
                step_drift: 0.5,
                seed,
            };
            let m = GatingModel::new(&cfg);
            let t = m.generate_trace(8, 32, 2, seed + 1);
            for step in 0..2 {
                for l in 0..4 {
                    for seq in 0..8 {
                        let c = t.seq_choices(step, l, seq);
                        prop_assert!(c[0] < 8 && c[1] < 8);
                        prop_assert_ne!(c[0], c[1]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod request_trace_tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn text_round_trip_is_exact() {
        let trace =
            RequestTrace::record([(t(0), 64, 8), (t(1_500_000), 128, 4), (t(1_500_000), 16, 2)]);
        let text = trace.to_text();
        let back = RequestTrace::parse(&text).expect("parse");
        assert_eq!(back, trace);
        // And a second round trip is byte-identical text.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let text = "# header\n\n  0 64 8\n# mid comment\n10 32 4\n";
        let trace = RequestTrace::parse(text).expect("parse");
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.rows[1],
            TraceRow {
                at: t(10),
                prompt_len: 32,
                gen_len: 4
            }
        );
        assert!(!trace.is_empty());
        assert!(RequestTrace::parse("# only comments\n")
            .expect("parse")
            .is_empty());
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        assert!(RequestTrace::parse("1 2\n")
            .unwrap_err()
            .contains("3 fields"));
        assert!(RequestTrace::parse("x 2 3\n")
            .unwrap_err()
            .contains("arrival"));
        assert!(RequestTrace::parse("5 0 3\n")
            .unwrap_err()
            .contains("positive"));
        assert!(RequestTrace::parse("9 2 3\n5 2 3\n")
            .unwrap_err()
            .contains("order"));
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn record_rejects_unsorted_rows() {
        let _ = RequestTrace::record([(t(9), 1, 1), (t(5), 1, 1)]);
    }
}
