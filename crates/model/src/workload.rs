//! Inference workloads.
//!
//! The paper's evaluation fixes prompt length 512 and output length 32 and
//! sweeps the batch size (4–64) and the number of batches `n` in a batch
//! group (3–15). A [`Workload`] pins down the *total* work — `num_batches ×
//! batch_size` sequences — so that multi-batch engines (Klotski, FlexGen)
//! and single-batch engines (Accelerate, MoE-Infinity, Fiddler) are compared
//! on identical token counts.

use std::fmt;

/// A fixed-shape batch-generation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// Sequences per batch.
    pub batch_size: u32,
    /// Number of batches (for Klotski/FlexGen this is the batch-group size
    /// `n`; single-batch engines process them consecutively).
    pub num_batches: u32,
    /// Prompt length in tokens (paper: 512).
    pub prompt_len: u32,
    /// Generated tokens per sequence (paper: 32).
    pub gen_len: u32,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(batch_size: u32, num_batches: u32, prompt_len: u32, gen_len: u32) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(num_batches > 0, "num_batches must be positive");
        assert!(prompt_len > 0, "prompt_len must be positive");
        assert!(gen_len > 0, "gen_len must be positive");
        Workload {
            batch_size,
            num_batches,
            prompt_len,
            gen_len,
        }
    }

    /// The paper's default shape: prompt 512, output 32, one batch.
    /// Combine with [`Workload::with_batches`] once the planner picked `n`.
    pub fn paper_default(batch_size: u32) -> Self {
        Workload::new(batch_size, 1, 512, 32)
    }

    /// Returns the same workload with `num_batches = n`.
    pub fn with_batches(mut self, n: u32) -> Self {
        assert!(n > 0, "num_batches must be positive");
        self.num_batches = n;
        self
    }

    /// Total sequences across all batches.
    pub fn total_seqs(&self) -> u64 {
        self.batch_size as u64 * self.num_batches as u64
    }

    /// Total prompt tokens across all sequences.
    pub fn total_prompt_tokens(&self) -> u64 {
        self.total_seqs() * self.prompt_len as u64
    }

    /// Total generated tokens (the throughput numerator).
    pub fn total_generated(&self) -> u64 {
        self.total_seqs() * self.gen_len as u64
    }

    /// Context length at decode step `step` (0-based): prompt plus the
    /// tokens generated so far plus the one being attended.
    pub fn context_at_step(&self, step: u32) -> u64 {
        self.prompt_len as u64 + step as u64 + 1
    }

    /// Final context length after all generation steps.
    pub fn max_context(&self) -> u64 {
        self.prompt_len as u64 + self.gen_len as u64
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bs={} × n={} (prompt {}, gen {})",
            self.batch_size, self.num_batches, self.prompt_len, self.gen_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply_out() {
        let w = Workload::new(64, 10, 512, 32);
        assert_eq!(w.total_seqs(), 640);
        assert_eq!(w.total_prompt_tokens(), 640 * 512);
        assert_eq!(w.total_generated(), 640 * 32);
    }

    #[test]
    fn paper_default_shape() {
        let w = Workload::paper_default(16).with_batches(15);
        assert_eq!(w.prompt_len, 512);
        assert_eq!(w.gen_len, 32);
        assert_eq!(w.batch_size, 16);
        assert_eq!(w.num_batches, 15);
    }

    #[test]
    fn context_grows_by_one_per_step() {
        let w = Workload::paper_default(4);
        assert_eq!(w.context_at_step(0), 513);
        assert_eq!(w.context_at_step(31), 544);
        assert_eq!(w.max_context(), 544);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_size_rejected() {
        let _ = Workload::new(0, 1, 512, 32);
    }

    #[test]
    fn display_mentions_shape() {
        let w = Workload::new(8, 3, 512, 32);
        assert_eq!(w.to_string(), "bs=8 × n=3 (prompt 512, gen 32)");
    }
}
