//! The analytic cost model: op → simulated duration.
//!
//! Every engine (Klotski and the baselines) and the constraint-sensitive
//! planner derive task durations from one [`CostModel`], so comparisons are
//! apples-to-apples. GPU ops follow a roofline: the longer of the FLOP time
//! and the memory-traffic time, plus a per-kernel dispatch overhead that
//! models the eager PyTorch/HF stack the paper's engine is built on (this
//! overhead is what makes the paper's measured ≈2.6 ms attention at batch 16
//! so much larger than the raw roofline value). Transfers are
//! `bytes / bandwidth + latency`.

use klotski_sim::time::SimDuration;

use crate::hardware::HardwareSpec;
use crate::spec::ModelSpec;

/// Kernel-count estimates per logical op on an eager framework
/// (norm + projections + softmax + cache ops for attention, etc.).
pub mod kernels {
    /// Kernels launched by one attention op (one batch, one layer).
    pub const ATTENTION: u32 = 30;
    /// Kernels launched by one gate op.
    pub const GATE: u32 = 4;
    /// Kernels launched by one expert FFN op.
    pub const EXPERT: u32 = 5;
    /// Kernels launched by one dense FFN op.
    pub const DENSE: u32 = 5;
}

/// Computes op durations for one (model, hardware) pair.
///
/// # Examples
///
/// ```
/// use klotski_model::cost::CostModel;
/// use klotski_model::hardware::HardwareSpec;
/// use klotski_model::spec::ModelSpec;
///
/// let cm = CostModel::new(ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090());
/// // Paper anchor: one expert transfer ≈ 21 ms on the 3090's PCIe 4.0 link.
/// let t = cm.expert_h2d_time(1.0);
/// assert!((t.as_millis_f64() - 21.0).abs() < 1.5, "{t}");
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    spec: ModelSpec,
    hw: HardwareSpec,
}

impl CostModel {
    /// Creates a cost model for `spec` running on `hw`.
    pub fn new(spec: ModelSpec, hw: HardwareSpec) -> Self {
        CostModel { spec, hw }
    }

    /// The model specification.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The hardware specification.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hw
    }

    // ---- Generic rooflines ------------------------------------------------

    fn gpu_op(&self, flops: f64, bytes: f64, kernel_count: u32) -> SimDuration {
        let flop_time = flops / self.hw.gpu_flops;
        let mem_time = bytes / self.hw.gpu_mem_bw;
        SimDuration::from_secs_f64(flop_time.max(mem_time))
            + self.hw.kernel_overhead * kernel_count as u64
    }

    fn cpu_op(&self, flops: f64, bytes: f64) -> SimDuration {
        let flop_time = flops / self.hw.cpu_flops;
        let mem_time = bytes / self.hw.cpu_mem_bw;
        SimDuration::from_secs_f64(flop_time.max(mem_time))
    }

    fn link(&self, bytes: f64, bw: f64) -> SimDuration {
        SimDuration::from_secs_f64(bytes / bw) + self.hw.transfer_latency
    }

    // ---- Compute ops -------------------------------------------------------

    /// Attention (projections + scores + norms) for `seqs` sequences, each
    /// contributing `new_tokens` query tokens attending over `context` keys.
    ///
    /// Decode: `new_tokens = 1`, `context` = current sequence length.
    /// Prefill: `new_tokens` = prompt length, `context` ≈ `prompt / 2`
    /// (causal average) — pass [`CostModel::attention_prefill_time`] instead.
    pub fn attention_time(&self, seqs: u64, new_tokens: u64, context: u64) -> SimDuration {
        let tokens = seqs * new_tokens;
        let flops = tokens as f64
            * (self.spec.attn_proj_flops_per_token() + self.spec.attn_score_flops(context)) as f64;
        let weight_bytes = self.spec.attn_bytes() as f64;
        let kv_bytes = (seqs * context) as f64 * self.spec.kv_bytes_per_token_layer() as f64;
        let act_bytes = 4.0 * self.spec.hidden_bytes(tokens) as f64;
        self.gpu_op(
            flops,
            weight_bytes + kv_bytes + act_bytes,
            kernels::ATTENTION,
        )
    }

    /// Attention over a full prompt of `prompt_len` tokens (prefill phase).
    pub fn attention_prefill_time(&self, seqs: u64, prompt_len: u64) -> SimDuration {
        self.attention_time(seqs, prompt_len, prompt_len / 2 + 1)
    }

    /// Gate (router) over `tokens` tokens.
    pub fn gate_time(&self, tokens: u64) -> SimDuration {
        let flops = tokens as f64 * self.spec.gate_flops_per_token() as f64;
        let bytes = self.spec.gate_bytes() as f64 + 2.0 * self.spec.hidden_bytes(tokens) as f64;
        self.gpu_op(flops, bytes, kernels::GATE)
    }

    /// One expert's FFN over the `tokens` tokens routed to it (GPU).
    ///
    /// With few tokens this is memory-bound on reading the expert's own
    /// weights from VRAM — the paper's "<1 ms per token" anchor.
    pub fn expert_time(&self, tokens: u64) -> SimDuration {
        if tokens == 0 {
            return SimDuration::ZERO;
        }
        let flops = tokens as f64 * self.spec.expert_flops_per_token() as f64;
        let bytes = self.spec.expert_bytes() as f64 + 3.0 * self.spec.hidden_bytes(tokens) as f64;
        self.gpu_op(flops, bytes, kernels::EXPERT)
    }

    /// Dense FFN over `tokens` tokens (dense layers / dense models).
    pub fn dense_ffn_time(&self, tokens: u64) -> SimDuration {
        let flops = tokens as f64 * self.spec.expert_flops_per_token() as f64;
        let bytes =
            self.spec.dense_ffn_bytes() as f64 + 3.0 * self.spec.hidden_bytes(tokens) as f64;
        self.gpu_op(flops, bytes, kernels::DENSE)
    }

    /// One expert's FFN over `tokens` tokens executed **on the CPU**
    /// (Fiddler-style orchestration); bound by streaming the expert weights
    /// through host memory at decode-sized token counts.
    pub fn cpu_expert_time(&self, tokens: u64) -> SimDuration {
        if tokens == 0 {
            return SimDuration::ZERO;
        }
        let flops = tokens as f64 * self.spec.expert_flops_per_token() as f64;
        let bytes = self.spec.expert_bytes() as f64;
        self.cpu_op(flops, bytes)
    }

    // ---- Transfers ---------------------------------------------------------

    /// Host→device time for `bytes` over pinned memory.
    pub fn h2d_time(&self, bytes: u64) -> SimDuration {
        self.link(bytes as f64, self.hw.h2d_bw)
    }

    /// Host→device time for `bytes` from pageable (unpinned) memory —
    /// what naive `.to(device)` offloading implementations pay.
    pub fn h2d_time_unpinned(&self, bytes: u64) -> SimDuration {
        self.link(bytes as f64, self.hw.h2d_bw * self.hw.unpinned_factor)
    }

    /// Device→host time for `bytes`.
    pub fn d2h_time(&self, bytes: u64) -> SimDuration {
        self.link(bytes as f64, self.hw.d2h_bw)
    }

    /// Disk→DRAM staging time for `bytes`.
    pub fn disk_time(&self, bytes: u64) -> SimDuration {
        self.link(bytes as f64, self.hw.disk_bw)
    }

    /// H2D time of one expert, with `size_factor` scaling the bytes
    /// (1.0 = unquantized; pass a [`QuantScheme`](crate::spec::QuantScheme)
    /// factor for quantized transfers).
    pub fn expert_h2d_time(&self, size_factor: f64) -> SimDuration {
        self.link(
            self.spec.expert_bytes() as f64 * size_factor,
            self.hw.h2d_bw,
        )
    }

    /// H2D time of one layer's attention weights, scaled by `size_factor`.
    pub fn attn_h2d_time(&self, size_factor: f64) -> SimDuration {
        self.link(self.spec.attn_bytes() as f64 * size_factor, self.hw.h2d_bw)
    }

    /// H2D time of the gate weights.
    pub fn gate_h2d_time(&self) -> SimDuration {
        self.link(self.spec.gate_bytes() as f64, self.hw.h2d_bw)
    }

    /// H2D time of the KV cache of `seqs` sequences × `context` tokens for
    /// one layer, scaled by `kv_factor` (sparse attention shrinks this).
    pub fn kv_h2d_time(&self, seqs: u64, context: u64, kv_factor: f64) -> SimDuration {
        let bytes =
            (seqs * context) as f64 * self.spec.kv_bytes_per_token_layer() as f64 * kv_factor;
        self.link(bytes, self.hw.h2d_bw)
    }

    /// D2H time of the newly produced KV entries (`seqs` × `new_tokens`).
    pub fn kv_d2h_time(&self, seqs: u64, new_tokens: u64) -> SimDuration {
        let bytes = (seqs * new_tokens) as f64 * self.spec.kv_bytes_per_token_layer() as f64;
        self.link(bytes, self.hw.d2h_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env1_mixtral() -> CostModel {
        CostModel::new(ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090())
    }

    #[test]
    fn attention_anchor_batch16_is_about_2_6_ms() {
        // Paper §1: "the average attention computation is about 2.6 ms"
        // (Mixtral-8×7B, RTX 3090, batch 16).
        let cm = env1_mixtral();
        let t = cm.attention_time(16, 1, 512).as_millis_f64();
        assert!((1.8..3.6).contains(&t), "attention = {t} ms");
    }

    #[test]
    fn expert_transfer_anchor_is_about_21_ms() {
        // Paper §1: "the single expert transmission time is about 21 ms".
        let cm = env1_mixtral();
        let t = cm.expert_h2d_time(1.0).as_millis_f64();
        assert!((19.5..22.5).contains(&t), "expert transfer = {t} ms");
    }

    #[test]
    fn expert_token_anchor_is_under_1_ms() {
        // Paper §1: "processing a token with a single expert … takes less
        // than 1 ms, which is much less than the transmission delays".
        let cm = env1_mixtral();
        let t = cm.expert_time(1);
        assert!(t.as_millis_f64() < 1.0, "expert(1 token) = {t}");
        assert!(t < cm.expert_h2d_time(1.0));
    }

    #[test]
    fn compute_scales_with_tokens_and_io_does_not() {
        let cm = env1_mixtral();
        let one = cm.expert_time(1);
        let many = cm.expert_time(2048);
        assert!(many > one * 4);
        assert_eq!(cm.expert_h2d_time(1.0), cm.expert_h2d_time(1.0));
    }

    #[test]
    fn quantization_shrinks_transfer_proportionally() {
        let cm = env1_mixtral();
        let full = cm.expert_h2d_time(1.0);
        let quant = cm.expert_h2d_time(0.27);
        let ratio = quant.as_secs_f64() / full.as_secs_f64();
        assert!((0.25..0.32).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn unpinned_transfers_are_slower() {
        let cm = env1_mixtral();
        let bytes = 100_000_000;
        assert!(cm.h2d_time_unpinned(bytes) > cm.h2d_time(bytes) * 2);
    }

    #[test]
    fn cpu_expert_is_memory_bound_at_decode() {
        // One token on the CPU: streaming 352 MB at ~45 GB/s ≈ 8 ms,
        // far above the FLOP time — Fiddler's regime.
        let cm = env1_mixtral();
        let t = cm.cpu_expert_time(1).as_millis_f64();
        assert!((4.0..16.0).contains(&t), "cpu expert = {t} ms");
        // And still cheaper than transfer+compute for a single token is NOT
        // guaranteed — that's exactly Fiddler's runtime decision.
    }

    #[test]
    fn prefill_attention_exceeds_decode_attention() {
        let cm = env1_mixtral();
        let prefill = cm.attention_prefill_time(16, 512);
        let decode = cm.attention_time(16, 1, 512);
        assert!(prefill > decode * 20);
    }

    #[test]
    fn zero_token_ops_cost_nothing() {
        let cm = env1_mixtral();
        assert_eq!(cm.expert_time(0), SimDuration::ZERO);
        assert_eq!(cm.cpu_expert_time(0), SimDuration::ZERO);
    }

    #[test]
    fn kv_transfer_times_scale_with_population() {
        let cm = env1_mixtral();
        let small = cm.kv_h2d_time(16, 512, 1.0);
        let big = cm.kv_h2d_time(64, 512, 1.0);
        assert!(big > small * 3);
        let sparse = cm.kv_h2d_time(64, 512, 0.25);
        assert!(sparse < big / 2);
    }

    #[test]
    fn gate_is_cheap() {
        let cm = env1_mixtral();
        assert!(cm.gate_time(960) < cm.attention_time(16, 1, 512));
    }
}
