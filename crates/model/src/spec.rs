//! Model architecture specifications.
//!
//! A [`ModelSpec`] describes everything the scheduling layer needs to know
//! about a transformer: per-tensor byte sizes, FLOP counts per token, and
//! the MoE structure (number of experts, top-k, which layers are sparse).
//! Presets cover every model in the paper's evaluation: Mixtral-8×7B and
//! 8×22B (Fig. 10–15), Switch Transformers base-8/16/128 (Table 1, Fig. 5)
//! and the dense OPT-1.3B/6.7B comparison points (Table 1).

use std::fmt;

/// Parameter data type, determining bytes per weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// 32-bit float.
    F32,
    /// bfloat16 (the paper's default for all models).
    Bf16,
    /// float16.
    F16,
}

impl Dtype {
    /// Bytes per parameter.
    pub fn bytes(self) -> f64 {
        match self {
            Dtype::F32 => 4.0,
            Dtype::Bf16 | Dtype::F16 => 2.0,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dtype::F32 => f.write_str("f32"),
            Dtype::Bf16 => f.write_str("bf16"),
            Dtype::F16 => f.write_str("f16"),
        }
    }
}

/// Feed-forward flavour: how many weight matrices one expert (or the dense
/// FFN) holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FfnKind {
    /// Gated SiLU FFN with three matrices (`w1`, `w2`, `w3`), as in Mixtral.
    SwiGlu,
    /// Classic two-matrix ReLU FFN, as in Switch Transformers / OPT.
    Relu,
}

impl FfnKind {
    /// Number of `d_model × d_ff` weight matrices.
    pub fn matrices(self) -> u64 {
        match self {
            FfnKind::SwiGlu => 3,
            FfnKind::Relu => 2,
        }
    }
}

/// A group-wise affine quantization scheme (HQQ-style), used to shrink
/// transfer bytes (§7 "Compression" of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantScheme {
    /// Bits per weight (the paper presets 4).
    pub bits: u32,
    /// Weights per scale group (paper: 64).
    pub group_size: u32,
    /// Weights per zero-point group (paper: 128).
    pub zero_group_size: u32,
}

impl QuantScheme {
    /// The paper's preset: 4 bits, group 64, zero-scale group 128.
    pub fn paper_default() -> Self {
        QuantScheme {
            bits: 4,
            group_size: 64,
            zero_group_size: 128,
        }
    }

    /// Bytes per parameter including per-group scale/zero overhead
    /// (scales and zeros stored as 16-bit).
    pub fn bytes_per_param(&self) -> f64 {
        self.bits as f64 / 8.0 + 2.0 / self.group_size as f64 + 2.0 / self.zero_group_size as f64
    }

    /// Size ratio versus an unquantized dtype.
    pub fn factor_vs(&self, dtype: Dtype) -> f64 {
        self.bytes_per_param() / dtype.bytes()
    }
}

/// Architecture description of one model.
///
/// Dense models are expressed as `n_experts == 0`; MoE layers occur every
/// [`moe_every`](ModelSpec::moe_every) blocks (1 for Mixtral, 2 for Switch
/// Transformers), with dense FFNs in between.
///
/// # Examples
///
/// ```
/// use klotski_model::spec::ModelSpec;
///
/// let m = ModelSpec::mixtral_8x7b();
/// // 46.7B parameters, within 2%.
/// let b = m.total_params() as f64;
/// assert!((b - 46.7e9).abs() / 46.7e9 < 0.02, "{b}");
/// // One expert is ~352 MB in bf16 — the 21ms PCIe 4.0 transfer anchor.
/// assert!((m.expert_bytes() as f64 - 352.3e6).abs() < 2e6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of transformer blocks.
    pub n_layers: u32,
    /// Hidden dimension.
    pub d_model: u64,
    /// FFN inner dimension (per expert for MoE layers).
    pub d_ff: u64,
    /// Attention query heads.
    pub n_heads: u64,
    /// Key/value heads (GQA); equals `n_heads` without GQA.
    pub n_kv_heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Experts per MoE layer; `0` means a dense model.
    pub n_experts: u32,
    /// Experts activated per token by the gate.
    pub top_k: u32,
    /// An MoE layer every `moe_every` blocks (1 ⇒ all blocks are MoE).
    pub moe_every: u32,
    /// Vocabulary size.
    pub vocab: u64,
    /// Weight data type.
    pub dtype: Dtype,
    /// FFN flavour.
    pub ffn: FfnKind,
}

impl ModelSpec {
    // ---- Presets -------------------------------------------------------

    /// Mixtral-8×7B: 32 layers, 8 experts, top-2, 46.7B parameters.
    pub fn mixtral_8x7b() -> Self {
        ModelSpec {
            name: "Mixtral-8x7B".to_owned(),
            n_layers: 32,
            d_model: 4096,
            d_ff: 14336,
            n_heads: 32,
            n_kv_heads: 8,
            head_dim: 128,
            n_experts: 8,
            top_k: 2,
            moe_every: 1,
            vocab: 32000,
            dtype: Dtype::Bf16,
            ffn: FfnKind::SwiGlu,
        }
    }

    /// Mixtral-8×22B: 56 layers, 8 experts, top-2, 141B parameters.
    pub fn mixtral_8x22b() -> Self {
        ModelSpec {
            name: "Mixtral-8x22B".to_owned(),
            n_layers: 56,
            d_model: 6144,
            d_ff: 16384,
            n_heads: 48,
            n_kv_heads: 8,
            head_dim: 128,
            n_experts: 8,
            top_k: 2,
            moe_every: 1,
            vocab: 32768,
            dtype: Dtype::Bf16,
            ffn: FfnKind::SwiGlu,
        }
    }

    /// Switch Transformers base with `n_experts` experts: 24 blocks
    /// (encoder + decoder stacks flattened for scheduling purposes), MoE
    /// every second block, top-1 routing. Matches the paper's quoted sizes
    /// ("about 2.2 GB" for base-16, "about 14 GB" for base-128); the
    /// decoder-only Fig. 5 heatmaps use the last 6 MoE layers.
    pub fn switch_base(n_experts: u32) -> Self {
        ModelSpec {
            name: format!("switch-base-{n_experts}"),
            n_layers: 24,
            d_model: 768,
            d_ff: 3072,
            n_heads: 12,
            n_kv_heads: 12,
            head_dim: 64,
            n_experts,
            top_k: 1,
            moe_every: 2,
            vocab: 32128,
            dtype: Dtype::Bf16,
            ffn: FfnKind::Relu,
        }
    }

    /// OPT-1.3B (dense): Table 1's small dense comparison point.
    pub fn opt_1_3b() -> Self {
        ModelSpec {
            name: "OPT-1.3B".to_owned(),
            n_layers: 24,
            d_model: 2048,
            d_ff: 8192,
            n_heads: 32,
            n_kv_heads: 32,
            head_dim: 64,
            n_experts: 0,
            top_k: 0,
            moe_every: 1,
            vocab: 50272,
            dtype: Dtype::Bf16,
            ffn: FfnKind::Relu,
        }
    }

    /// OPT-6.7B (dense): Table 1's large dense comparison point.
    pub fn opt_6_7b() -> Self {
        ModelSpec {
            name: "OPT-6.7B".to_owned(),
            n_layers: 32,
            d_model: 4096,
            d_ff: 16384,
            n_heads: 32,
            n_kv_heads: 32,
            head_dim: 128,
            n_experts: 0,
            top_k: 0,
            moe_every: 1,
            vocab: 50272,
            dtype: Dtype::Bf16,
            ffn: FfnKind::Relu,
        }
    }

    // ---- Structure queries ---------------------------------------------

    /// Whether this model has any MoE layers.
    pub fn is_moe(&self) -> bool {
        self.n_experts > 0
    }

    /// Whether block `layer` contains an MoE layer (vs. a dense FFN).
    pub fn is_moe_layer(&self, layer: u32) -> bool {
        self.is_moe() && layer % self.moe_every == self.moe_every - 1
    }

    /// Number of MoE blocks.
    pub fn n_moe_layers(&self) -> u32 {
        (0..self.n_layers).filter(|&l| self.is_moe_layer(l)).count() as u32
    }

    /// Index of block `layer` among the MoE blocks, if it is one
    /// (gating traces are indexed by MoE layer, not by block).
    pub fn moe_index(&self, layer: u32) -> Option<u32> {
        if !self.is_moe_layer(layer) {
            return None;
        }
        Some((0..layer).filter(|&l| self.is_moe_layer(l)).count() as u32)
    }

    // ---- Sizes (bytes) --------------------------------------------------

    /// Attention projection parameters (Q, K, V, O) per layer.
    pub fn attn_params(&self) -> u64 {
        let q = self.d_model * self.n_heads * self.head_dim;
        let o = self.n_heads * self.head_dim * self.d_model;
        let kv = 2 * self.d_model * self.n_kv_heads * self.head_dim;
        q + o + kv
    }

    /// Attention weight bytes per layer (projections + the block's norms).
    pub fn attn_bytes(&self) -> u64 {
        let norms = 2 * self.d_model; // two RMS/LayerNorm weight vectors
        ((self.attn_params() + norms) as f64 * self.dtype.bytes()) as u64
    }

    /// Parameters of one expert (or of the dense FFN when `n_experts == 0`).
    pub fn expert_params(&self) -> u64 {
        self.ffn.matrices() * self.d_model * self.d_ff
    }

    /// Bytes of one expert's weights.
    pub fn expert_bytes(&self) -> u64 {
        (self.expert_params() as f64 * self.dtype.bytes()) as u64
    }

    /// Bytes of the dense FFN (same shape as one expert).
    pub fn dense_ffn_bytes(&self) -> u64 {
        self.expert_bytes()
    }

    /// Gate (router) weight bytes per MoE layer.
    pub fn gate_bytes(&self) -> u64 {
        ((self.d_model * self.n_experts as u64) as f64 * self.dtype.bytes()) as u64
    }

    /// All weight bytes of block `layer` (attention + FFN/MoE + gate).
    pub fn layer_bytes(&self, layer: u32) -> u64 {
        if self.is_moe_layer(layer) {
            self.attn_bytes() + self.gate_bytes() + self.n_experts as u64 * self.expert_bytes()
        } else {
            self.attn_bytes() + self.dense_ffn_bytes()
        }
    }

    /// Embedding + LM-head bytes.
    pub fn embed_bytes(&self) -> u64 {
        ((2 * self.vocab * self.d_model) as f64 * self.dtype.bytes()) as u64
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        let mut p = 2 * self.vocab * self.d_model;
        for l in 0..self.n_layers {
            p += self.attn_params() + 2 * self.d_model;
            if self.is_moe_layer(l) {
                p += self.d_model * self.n_experts as u64;
                p += self.n_experts as u64 * self.expert_params();
            } else {
                p += self.expert_params();
            }
        }
        p
    }

    /// Total model bytes.
    pub fn total_bytes(&self) -> u64 {
        (self.total_params() as f64 * self.dtype.bytes()) as u64
    }

    /// KV-cache bytes per token per layer (keys + values).
    pub fn kv_bytes_per_token_layer(&self) -> u64 {
        ((2 * self.n_kv_heads * self.head_dim) as f64 * self.dtype.bytes()) as u64
    }

    /// KV-cache bytes for `seqs` sequences of `context` tokens across all layers.
    pub fn kv_bytes_total(&self, seqs: u64, context: u64) -> u64 {
        seqs * context * self.kv_bytes_per_token_layer() * self.n_layers as u64
    }

    /// Hidden-state bytes for `tokens` tokens.
    pub fn hidden_bytes(&self, tokens: u64) -> u64 {
        ((tokens * self.d_model) as f64 * self.dtype.bytes()) as u64
    }

    // ---- FLOPs per token -------------------------------------------------

    /// Attention projection FLOPs for one token (2 FLOPs per MAC).
    pub fn attn_proj_flops_per_token(&self) -> u64 {
        2 * self.attn_params()
    }

    /// Attention score+value FLOPs for one token attending over `context`.
    pub fn attn_score_flops(&self, context: u64) -> u64 {
        4 * self.n_heads * self.head_dim * context
    }

    /// FLOPs for one token through one expert (or the dense FFN).
    pub fn expert_flops_per_token(&self) -> u64 {
        2 * self.expert_params()
    }

    /// Gate FLOPs for one token.
    pub fn gate_flops_per_token(&self) -> u64 {
        2 * self.d_model * self.n_experts as u64
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, d_model {}, {} experts top-{}, {:.1} GB {})",
            self.name,
            self.n_layers,
            self.d_model,
            self.n_experts,
            self.top_k,
            self.total_bytes() as f64 / 1e9,
            self.dtype,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn mixtral_8x7b_matches_published_size() {
        let m = ModelSpec::mixtral_8x7b();
        let params = m.total_params() as f64;
        assert!(
            (params - 46.7e9).abs() / 46.7e9 < 0.02,
            "params = {params:e}"
        );
        // bf16 model ≈ 93 GB.
        assert!((m.total_bytes() as f64 / GB - 93.4).abs() < 2.0);
        // Expert ≈ 352 MB (the 21 ms @ ~16.8 GB/s anchor).
        assert!((m.expert_bytes() as f64 / 1e6 - 352.3).abs() < 2.0);
        // KV = 4 KiB per token per layer (2 × 8 heads × 128 dim × 2 B).
        assert_eq!(m.kv_bytes_per_token_layer(), 4096);
    }

    #[test]
    fn mixtral_8x22b_matches_published_size() {
        let m = ModelSpec::mixtral_8x22b();
        let params = m.total_params() as f64;
        assert!(
            (params - 141.0e9).abs() / 141.0e9 < 0.02,
            "params = {params:e}"
        );
        // One expert ≈ 604 MB.
        assert!((m.expert_bytes() as f64 / 1e6 - 604.0).abs() < 3.0);
    }

    #[test]
    fn switch_base_sizes_match_table1() {
        let s16 = ModelSpec::switch_base(16);
        // Paper Table 1: "about 2.2 GB".
        assert!(
            (s16.total_bytes() as f64 / GB - 2.2).abs() < 0.4,
            "{}",
            s16.total_bytes()
        );
        let s128 = ModelSpec::switch_base(128);
        // Paper Table 1: "about 14 GB".
        assert!(
            (s128.total_bytes() as f64 / GB - 14.0).abs() < 1.5,
            "{}",
            s128.total_bytes()
        );
        assert_eq!(s16.n_moe_layers(), 12);
        assert_eq!(s16.top_k, 1);
    }

    #[test]
    fn opt_sizes_match_table1() {
        let small = ModelSpec::opt_1_3b();
        assert!((small.total_bytes() as f64 / GB - 2.6).abs() < 0.3);
        assert!(!small.is_moe());
        let large = ModelSpec::opt_6_7b();
        assert!((large.total_bytes() as f64 / GB - 13.3).abs() < 0.7);
    }

    #[test]
    fn moe_layer_pattern_respects_moe_every() {
        let mixtral = ModelSpec::mixtral_8x7b();
        assert!((0..32).all(|l| mixtral.is_moe_layer(l)));
        let switch = ModelSpec::switch_base(8);
        let moe: Vec<u32> = (0..12).filter(|&l| switch.is_moe_layer(l)).collect();
        assert_eq!(moe, vec![1, 3, 5, 7, 9, 11]);
        assert_eq!(switch.moe_index(1), Some(0));
        assert_eq!(switch.moe_index(2), None);
        assert_eq!(switch.moe_index(11), Some(5));
        let dense = ModelSpec::opt_1_3b();
        assert!((0..24).all(|l| !dense.is_moe_layer(l)));
    }

    #[test]
    fn layer_bytes_sum_close_to_total() {
        for m in [
            ModelSpec::mixtral_8x7b(),
            ModelSpec::mixtral_8x22b(),
            ModelSpec::switch_base(16),
            ModelSpec::opt_6_7b(),
        ] {
            let layers: u64 = (0..m.n_layers).map(|l| m.layer_bytes(l)).sum();
            let total = m.total_bytes();
            let diff = (total as i64 - layers as i64 - m.embed_bytes() as i64).abs();
            // Norm vectors are the only thing unaccounted; tiny.
            assert!(
                (diff as f64) < 0.01 * total as f64,
                "{}: diff {diff}",
                m.name
            );
        }
    }

    #[test]
    fn quant_scheme_shrinks_as_expected() {
        let q = QuantScheme::paper_default();
        // ~0.55 B/param ⇒ ~27% of bf16.
        let f = q.factor_vs(Dtype::Bf16);
        assert!((0.25..0.30).contains(&f), "factor = {f}");
        let q3 = QuantScheme {
            bits: 3,
            ..QuantScheme::paper_default()
        };
        assert!(q3.bytes_per_param() < q.bytes_per_param());
    }

    #[test]
    fn flops_formulas_are_consistent() {
        let m = ModelSpec::mixtral_8x7b();
        // Expert FLOPs per token = 2 × 3 × 4096 × 14336.
        assert_eq!(m.expert_flops_per_token(), 2 * 3 * 4096 * 14336);
        assert_eq!(m.gate_flops_per_token(), 2 * 4096 * 8);
        assert!(m.attn_score_flops(512) > 0);
    }

    #[test]
    fn display_is_informative() {
        let s = ModelSpec::mixtral_8x7b().to_string();
        assert!(s.contains("Mixtral-8x7B"));
        assert!(s.contains("top-2"));
    }
}
