//! # klotski-model — models, hardware, costs, workloads, traces
//!
//! Everything the scheduling layer needs to know about *what* is being run
//! and *where*:
//!
//! * [`spec`] — architecture descriptions with exact per-tensor byte sizes
//!   and FLOP counts (Mixtral-8×7B/8×22B, Switch-base-8/16/128, OPT).
//! * [`hardware`] — effective machine rates for the paper's two
//!   environments (Table 2), calibrated against the paper's own anchors.
//! * [`cost`] — the roofline cost model mapping ops to simulated durations.
//! * [`workload`] — batch/prompt/generation shapes.
//! * [`trace`] — a generative model of expert routing with hot-expert skew,
//!   inter-layer correlation and per-task drift, plus materialized traces.
//!
//! ```
//! use klotski_model::cost::CostModel;
//! use klotski_model::hardware::HardwareSpec;
//! use klotski_model::spec::ModelSpec;
//!
//! let cm = CostModel::new(ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090());
//! // The paper's core imbalance: one expert's transfer dwarfs a whole
//! // batch-16 attention computation.
//! assert!(cm.expert_h2d_time(1.0) > cm.attention_time(16, 1, 512) * 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod hardware;
pub mod spec;
pub mod trace;
pub mod workload;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::cost::CostModel;
    pub use crate::hardware::HardwareSpec;
    pub use crate::spec::{Dtype, FfnKind, ModelSpec, QuantScheme};
    pub use crate::trace::{GatingModel, GatingTrace, TraceConfig};
    pub use crate::workload::Workload;
}
